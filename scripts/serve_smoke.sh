#!/bin/sh
# End-to-end smoke test for tilingd: build, start on a free port, probe
# /healthz, list the kernel catalog, run one real tiling request, verify
# the cache answers the repeat byte-identically, run a batch request and
# check its NDJSON stream, then SIGTERM and require a clean drained exit.
# Phase two reruns the daemon with -state-dir, SIGKILLs it mid-batch,
# restarts it over the same state, and requires the idempotent batch
# retry to return the exact bytes of the crash-free answers.
set -eu

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
    if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -KILL "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "serve-smoke: building tilingd"
go build -o "$workdir/tilingd" ./cmd/tilingd

"$workdir/tilingd" -addr 127.0.0.1:0 -default-timeout 10s 2>"$workdir/log" &
daemon_pid=$!

# The daemon prints "tilingd: listening on 127.0.0.1:PORT" once bound.
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^tilingd: listening on //p' "$workdir/log")
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { echo "serve-smoke: daemon died:"; cat "$workdir/log"; exit 1; }
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve-smoke: daemon never reported its address:"
    cat "$workdir/log"
    exit 1
fi
echo "serve-smoke: daemon up at $addr"

curl -fsS "http://$addr/healthz" | grep -q '"status":"ok"' || {
    echo "serve-smoke: health probe failed"; exit 1; }

curl -fsS "http://$addr/v1/kernels" | grep -q '"name":"MM"' || {
    echo "serve-smoke: kernel catalog missing MM"; exit 1; }
echo "serve-smoke: catalog lists MM"

req='{"kernel":"MM","size":64,"cache":"8k","seed":1,"maxEvaluations":60,"timeoutMs":10000}'
curl -fsS -o "$workdir/resp1" "http://$addr/v1/tile" -d "$req"
grep -q '"tile":\[' "$workdir/resp1" || {
    echo "serve-smoke: response carries no tile:"; cat "$workdir/resp1"; exit 1; }
echo "serve-smoke: got tiling $(cat "$workdir/resp1")"

# The identical request must be a byte-identical cache hit.
curl -fsS -o "$workdir/resp2" "http://$addr/v1/tile" -d "$req"
cmp -s "$workdir/resp1" "$workdir/resp2" || {
    echo "serve-smoke: cache hit differs from miss"; exit 1; }

# Batch: one cached item, one fresh, streamed as NDJSON. Item 0 repeats
# the single request above so its result must be the exact cached bytes.
batch='{"requests":[{"kernel":"MM","size":64,"cache":"8k","seed":1,"maxEvaluations":60,"timeoutMs":10000},{"kernel":"T2D","size":64,"cache":"8k","seed":1,"maxEvaluations":60,"timeoutMs":10000}]}'
curl -fsS -o "$workdir/batch" "http://$addr/v1/tile/batch" -d "$batch"
[ "$(wc -l < "$workdir/batch")" -eq 2 ] || {
    echo "serve-smoke: batch stream not 2 NDJSON lines:"; cat "$workdir/batch"; exit 1; }
grep -q '"index":0' "$workdir/batch" && grep -q '"index":1' "$workdir/batch" || {
    echo "serve-smoke: batch stream missing an index:"; cat "$workdir/batch"; exit 1; }
grep -q '"error"' "$workdir/batch" && {
    echo "serve-smoke: batch stream carries an error line:"; cat "$workdir/batch"; exit 1; }
grep '"index":0' "$workdir/batch" | grep -qF "$(cat "$workdir/resp1")" || {
    echo "serve-smoke: batch item 0 differs from the cached single answer"; exit 1; }
echo "serve-smoke: batch answered both items"

curl -fsS "http://$addr/debug/vars" | grep -q 'requests_accepted' || {
    echo "serve-smoke: expvar counters missing"; exit 1; }
curl -fsS "http://$addr/debug/vars" | grep -q 'evalcache_' || {
    echo "serve-smoke: expvar evalcache counters missing"; exit 1; }

echo "serve-smoke: draining"
kill -TERM "$daemon_pid"
status=0
wait "$daemon_pid" || status=$?
daemon_pid=""
if [ "$status" -ne 0 ]; then
    echo "serve-smoke: daemon exited $status after SIGTERM:"
    cat "$workdir/log"
    exit 1
fi
grep -q 'drained, exiting' "$workdir/log" || {
    echo "serve-smoke: no drain message in log:"; cat "$workdir/log"; exit 1; }

# ---- Phase two: crash durability ------------------------------------
# A durable daemon is SIGKILLed mid-batch; its heir over the same state
# dir must recover the journaled requests and answer the idempotent
# retry byte-identically to the crash-free run (resp1 from phase one).
echo "serve-smoke: crash phase (state dir, SIGKILL mid-batch)"
state="$workdir/state"
"$workdir/tilingd" -addr 127.0.0.1:0 -default-timeout 10s \
    -state-dir "$state" -checkpoint-interval 0 \
    -fault-spec 'eval.stall:stall=25ms' 2>"$workdir/log2" &
daemon_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^tilingd: listening on //p' "$workdir/log2")
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { echo "serve-smoke: durable daemon died:"; cat "$workdir/log2"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "serve-smoke: durable daemon never reported its address"; cat "$workdir/log2"; exit 1; }

# The batch repeats phase one's requests (workers:1 + the injected stall
# slow them without changing any result) so the recovered answers are
# comparable against resp1.
crashbatch='{"requests":[{"kernel":"MM","size":64,"cache":"8k","seed":1,"maxEvaluations":60,"timeoutMs":10000,"workers":1},{"kernel":"T2D","size":64,"cache":"8k","seed":1,"maxEvaluations":60,"timeoutMs":10000,"workers":1}]}'
curl -s -o /dev/null -H 'Idempotency-Key: smoke-batch' \
    "http://$addr/v1/tile/batch" -d "$crashbatch" 2>/dev/null &
curl_pid=$!

# Kill once every batch item's acceptance is durable and the most
# recently admitted search has snapshotted a generation. On a one-CPU
# box the admission gate serialises the items, so "both accepted" can
# mean the first already completed — the contract under test is that
# nothing accepted is ever lost, not that both are mid-flight.
ready=""
for _ in $(seq 1 300); do
    acc=$(grep -ch '"op":"accepted"' "$state/journal/"*.wal 2>/dev/null | awk '{s+=$1} END {print s+0}')
    if [ "$acc" -ge 2 ] && ls "$state/checkpoints/"*.ckpt >/dev/null 2>&1; then ready=1; break; fi
    sleep 0.1
done
[ -n "$ready" ] || { echo "serve-smoke: batch never reached a killable point (accepted=$acc)"; exit 1; }
kill -KILL "$daemon_pid" 2>/dev/null || true
wait "$daemon_pid" 2>/dev/null || true
wait "$curl_pid" 2>/dev/null || true
daemon_pid=""

"$workdir/tilingd" -addr 127.0.0.1:0 -default-timeout 10s -state-dir "$state" 2>"$workdir/log3" &
daemon_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^tilingd: listening on //p' "$workdir/log3")
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { echo "serve-smoke: restarted daemon died:"; cat "$workdir/log3"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "serve-smoke: restarted daemon never reported its address"; cat "$workdir/log3"; exit 1; }

# Every accepted-but-incomplete request must be replayed by recovery
# (at least the one that was mid-search when the SIGKILL landed).
recovered=""
for _ in $(seq 1 300); do
    if curl -fsS "http://$addr/debug/vars" | grep -Eq '"journal_recovered": *[1-9]'; then recovered=1; break; fi
    sleep 0.1
done
[ -n "$recovered" ] || {
    echo "serve-smoke: restart never recovered the journaled request:"
    curl -fsS "http://$addr/debug/vars" | grep -o '"journal_[a-z_]*": *[0-9]*' || true
    cat "$workdir/log3"; exit 1; }
echo "serve-smoke: restart recovered the interrupted search"

# The idempotent batch retry streams the recorded bytes; item 0 repeats
# phase one's single request, so it must match resp1 exactly.
curl -fsS -o "$workdir/crashretry" -H 'Idempotency-Key: smoke-batch' \
    "http://$addr/v1/tile/batch" -d "$crashbatch"
[ "$(grep -c '"source":"journal"' "$workdir/crashretry")" -eq 2 ] || {
    echo "serve-smoke: batch retry not fully served from journal:"; cat "$workdir/crashretry"; exit 1; }
grep '"index":0' "$workdir/crashretry" | grep -qF "$(cat "$workdir/resp1")" || {
    echo "serve-smoke: recovered batch item 0 differs from the crash-free answer"
    cat "$workdir/crashretry"; exit 1; }
echo "serve-smoke: idempotent retry byte-identical after crash"

kill -TERM "$daemon_pid"
status=0
wait "$daemon_pid" || status=$?
daemon_pid=""
[ "$status" -eq 0 ] || {
    echo "serve-smoke: restarted daemon exited $status after SIGTERM:"; cat "$workdir/log3"; exit 1; }
echo "serve-smoke: ok"
