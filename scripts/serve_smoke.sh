#!/bin/sh
# End-to-end smoke test for tilingd: build, start on a free port, probe
# /healthz, list the kernel catalog, run one real tiling request, verify
# the cache answers the repeat byte-identically, run a batch request and
# check its NDJSON stream, then SIGTERM and require a clean drained exit.
set -eu

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
    if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -KILL "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "serve-smoke: building tilingd"
go build -o "$workdir/tilingd" ./cmd/tilingd

"$workdir/tilingd" -addr 127.0.0.1:0 -default-timeout 10s 2>"$workdir/log" &
daemon_pid=$!

# The daemon prints "tilingd: listening on 127.0.0.1:PORT" once bound.
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^tilingd: listening on //p' "$workdir/log")
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { echo "serve-smoke: daemon died:"; cat "$workdir/log"; exit 1; }
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve-smoke: daemon never reported its address:"
    cat "$workdir/log"
    exit 1
fi
echo "serve-smoke: daemon up at $addr"

curl -fsS "http://$addr/healthz" | grep -q '"status":"ok"' || {
    echo "serve-smoke: health probe failed"; exit 1; }

curl -fsS "http://$addr/v1/kernels" | grep -q '"name":"MM"' || {
    echo "serve-smoke: kernel catalog missing MM"; exit 1; }
echo "serve-smoke: catalog lists MM"

req='{"kernel":"MM","size":64,"cache":"8k","seed":1,"maxEvaluations":60,"timeoutMs":10000}'
curl -fsS -o "$workdir/resp1" "http://$addr/v1/tile" -d "$req"
grep -q '"tile":\[' "$workdir/resp1" || {
    echo "serve-smoke: response carries no tile:"; cat "$workdir/resp1"; exit 1; }
echo "serve-smoke: got tiling $(cat "$workdir/resp1")"

# The identical request must be a byte-identical cache hit.
curl -fsS -o "$workdir/resp2" "http://$addr/v1/tile" -d "$req"
cmp -s "$workdir/resp1" "$workdir/resp2" || {
    echo "serve-smoke: cache hit differs from miss"; exit 1; }

# Batch: one cached item, one fresh, streamed as NDJSON. Item 0 repeats
# the single request above so its result must be the exact cached bytes.
batch='{"requests":[{"kernel":"MM","size":64,"cache":"8k","seed":1,"maxEvaluations":60,"timeoutMs":10000},{"kernel":"T2D","size":64,"cache":"8k","seed":1,"maxEvaluations":60,"timeoutMs":10000}]}'
curl -fsS -o "$workdir/batch" "http://$addr/v1/tile/batch" -d "$batch"
[ "$(wc -l < "$workdir/batch")" -eq 2 ] || {
    echo "serve-smoke: batch stream not 2 NDJSON lines:"; cat "$workdir/batch"; exit 1; }
grep -q '"index":0' "$workdir/batch" && grep -q '"index":1' "$workdir/batch" || {
    echo "serve-smoke: batch stream missing an index:"; cat "$workdir/batch"; exit 1; }
grep -q '"error"' "$workdir/batch" && {
    echo "serve-smoke: batch stream carries an error line:"; cat "$workdir/batch"; exit 1; }
grep '"index":0' "$workdir/batch" | grep -qF "$(cat "$workdir/resp1")" || {
    echo "serve-smoke: batch item 0 differs from the cached single answer"; exit 1; }
echo "serve-smoke: batch answered both items"

curl -fsS "http://$addr/debug/vars" | grep -q 'requests_accepted' || {
    echo "serve-smoke: expvar counters missing"; exit 1; }
curl -fsS "http://$addr/debug/vars" | grep -q 'evalcache_' || {
    echo "serve-smoke: expvar evalcache counters missing"; exit 1; }

echo "serve-smoke: draining"
kill -TERM "$daemon_pid"
status=0
wait "$daemon_pid" || status=$?
daemon_pid=""
if [ "$status" -ne 0 ]; then
    echo "serve-smoke: daemon exited $status after SIGTERM:"
    cat "$workdir/log"
    exit 1
fi
grep -q 'drained, exiting' "$workdir/log" || {
    echo "serve-smoke: no drain message in log:"; cat "$workdir/log"; exit 1; }
echo "serve-smoke: ok"
