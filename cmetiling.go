// Package cmetiling reproduces "Near-Optimal Loop Tiling by means of Cache
// Miss Equations and Genetic Algorithms" (Abella, González, Llosa, Vera —
// ICPP Workshops 2002): an automatic tile-size (and padding) selector for
// perfectly nested affine loops, driven by an exact analytical cache model
// (Cache Miss Equations) solved by iteration-space traversal with simple
// random sampling, and searched with a genetic algorithm.
//
// # Quick start
//
//	k, _ := cmetiling.GetKernel("MM")            // Figure-1 matrix multiply
//	nest, _ := k.Instance(500)                   // N=500 instance
//	res, _ := cmetiling.OptimizeTiling(context.Background(), nest, cmetiling.Options{
//		Cache: cmetiling.DM8K,                   // 8KB direct-mapped, 32B lines
//		Seed:  1,
//	})
//	fmt.Printf("tile %v: %.1f%% -> %.1f%% replacement misses\n",
//		res.Tile, 100*res.Before.ReplacementRatio, 100*res.After.ReplacementRatio)
//
// Every search takes a context first: cancel it or give it a deadline and
// the search stops at the next candidate boundary, returning the best
// result found so far (never an error).
//
// # Multi-fidelity evaluation
//
// Options.Fidelity (a Fidelity value; Rungs > 1 enables it) evaluates
// each generation by deterministic successive halving: candidates are
// first ranked on a coarse prefix of the fixed evaluation sample, the
// bottom fraction is pruned at scaled fitness, and only the survivors
// pay the full sample — a promoted candidate keeps its partial result
// and classifies only unseen points. The same evaluation budget then
// searches several times more candidates. The ladder is bit-reproducible
// for a fixed seed at any worker and island count, and the zero value
// (off) keeps every search byte-identical to earlier releases.
//
// # Sharing evaluation work across searches
//
// Options.SharedCache attaches a shared evaluation cache (NewEvalCache)
// to a search. The cache memoizes per-candidate fitness values, finalized
// per-tile statistics and analyzer pools across GA islands, successive
// searches and concurrent callers — strictly result-transparently: for a
// fixed seed a search returns bit-identical results whether the cache is
// absent, cold, or pre-warmed. Repeated or related searches over the same
// nest and cache geometry get faster, never different.
//
// Custom loop nests are built from the ir package's types (re-exported
// here): arrays with explicit layout, affine references, rectangular
// loops. See examples/ for complete programs.
//
// # Observing a search
//
// Options.Observer attaches a telemetry Recorder to a search: a typed
// event stream (search start/stop, phase changes, GA generations,
// checkpoints, evaluation batches) plus monotonic counters (objective
// evaluations, memo hits, sampled points, CME walk steps, analyzer-pool
// hits/misses). Three sinks ship with the package — NewJSONLSink (a
// machine-readable event log, byte-reproducible for a fixed seed with
// Workers=1), NewTTYSink (human-readable progress lines) and
// NewExpvarSink (aggregate metrics under /debug/vars) — and
// MultiRecorder fans one search out to several sinks. A nil Observer
// costs nothing.
//
// # Architecture
//
//   - internal/ir, internal/expr: the affine loop-nest representation.
//   - internal/iterspace: rectangular and tiled iteration spaces (§2.4's
//     2ⁿ convex regions), traversal and uniform sampling.
//   - internal/reuse: Wolf–Lam reuse vectors.
//   - internal/cme: Cache Miss Equations — the exact per-access point
//     solver (§2.2–2.3) and the symbolic equation generator (§2.1).
//   - internal/sampling: the §2.3 statistical estimator (164 points for a
//     width-0.1, 90%-confidence interval).
//   - internal/ga: the §3.2–3.3 genetic algorithm.
//   - internal/tiling, internal/padding: the program transformations.
//   - internal/core: the searches gluing it all together.
//   - internal/cachesim: the trace-driven simulator used as ground truth.
//   - internal/kernels: all Table-1 benchmark kernels.
//   - internal/experiments: regeneration of every table and figure.
package cmetiling

import (
	"context"
	"io"
	"os"

	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/cliutil"
	"repro/internal/cme"
	"repro/internal/core"
	"repro/internal/evalcache"
	"repro/internal/expr"
	"repro/internal/faultinject"
	"repro/internal/ga"
	"repro/internal/ir"
	"repro/internal/iterspace"
	"repro/internal/kernels"
	"repro/internal/parser"
	"repro/internal/sampling"
	"repro/internal/telemetry"
	"repro/internal/telemetry/sinks"
	"repro/internal/tiling"
)

// Cache geometry.
type (
	// CacheConfig describes a cache: size, line size, associativity.
	CacheConfig = cache.Config
)

// The paper's two evaluated configurations.
var (
	// DM8K is an 8KB direct-mapped cache with 32-byte lines.
	DM8K = cache.DM8K
	// DM32K is a 32KB direct-mapped cache with 32-byte lines.
	DM32K = cache.DM32K
)

// Loop-nest construction.
type (
	// Nest is a perfectly nested affine loop nest.
	Nest = ir.Nest
	// Loop is one loop of a nest.
	Loop = ir.Loop
	// Array is a program array with explicit memory layout.
	Array = ir.Array
	// Ref is an affine array reference.
	Ref = ir.Ref
	// Affine is an affine expression over loop variables.
	Affine = expr.Affine
)

// Expression helpers for building references and bounds.
var (
	// Const builds a constant expression.
	Const = expr.Const
	// Var builds the expression v_i for loop depth i (0 = outermost).
	Var = expr.Var
	// VarPlus builds v_i + c.
	VarPlus = expr.VarPlus
	// BoundOf wraps an expression as a loop upper bound.
	BoundOf = ir.BoundOf
	// LayoutArrays assigns consecutive aligned base addresses.
	LayoutArrays = ir.LayoutArrays
)

// Searches (the paper's contribution).
type (
	// Options configures a search; the zero value plus a Cache gives the
	// paper's parameters (164 sample points, population 30, pc 0.9,
	// pm 0.001, 15–25 generations).
	Options = core.Options
	// TilingResult reports a tile search.
	TilingResult = core.TilingResult
	// PaddingResult reports a padding search.
	PaddingResult = core.PaddingResult
	// CombinedResult reports padding+tiling (sequential or joint).
	CombinedResult = core.CombinedResult
	// OrderedTilingResult reports the tile-size + loop-order search.
	OrderedTilingResult = core.OrderedTilingResult
	// Level couples a cache level with its miss penalty.
	Level = core.Level
	// MultiLevelResult reports a cache-hierarchy tile search.
	MultiLevelResult = core.MultiLevelResult
	// Estimate is a sampled miss-ratio estimate with confidence interval.
	Estimate = sampling.Estimate
	// Stats are exact or sampled access-outcome counts.
	Stats = cachesim.Stats
	// Kernel is a Table-1 benchmark kernel.
	Kernel = kernels.Kernel
)

// Search runtime: every search is cancellable, deadline- and
// budget-bounded, and degrades gracefully to its best-so-far result.
type (
	// StopReason explains why a search ended (StopConverged is the
	// paper's Figure-7 schedule; the others mark bounded runs whose
	// results are still valid best-so-far candidates).
	StopReason = ga.StopReason
	// Progress is the per-generation report delivered to the deprecated
	// Options.Progress callback; new code should observe
	// GenerationDoneEvent through Options.Observer instead.
	Progress = ga.Progress
	// Checkpoint is a resumable generation-boundary snapshot of a
	// search, written through Options.Checkpoint and restored through
	// Options.ResumeFrom.
	Checkpoint = ga.Checkpoint
	// Fidelity configures deterministic multi-fidelity evaluation by
	// successive halving (Options.Fidelity; see "Multi-fidelity
	// evaluation" in the package docs). The zero value disables it.
	Fidelity = ga.Fidelity
)

// The stop reasons a bounded search can report.
const (
	StopConverged = ga.StopConverged
	StopDeadline  = ga.StopDeadline
	StopBudget    = ga.StopBudget
	StopCancelled = ga.StopCancelled
)

// ErrBadOption is the sentinel every Options.Validate failure wraps;
// match it with errors.Is to distinguish a misconfigured search from a
// runtime fault.
var ErrBadOption = core.ErrBadOption

// Shared evaluation cache: cross-search, cross-island memoization of
// evaluation work, attached through Options.SharedCache (see "Sharing
// evaluation work across searches" in the package docs).
type (
	// EvalCache is the sharded, bounded, concurrency-safe evaluation
	// cache; one instance may back any number of concurrent searches.
	EvalCache = evalcache.Cache
	// EvalCacheConfig sizes an EvalCache and attaches its telemetry
	// observer.
	EvalCacheConfig = evalcache.Config
	// EvalCacheMetrics is an EvalCache's hit/miss/eviction/size snapshot.
	EvalCacheMetrics = evalcache.Metrics
)

// NewEvalCache builds a shared evaluation cache; the zero EvalCacheConfig
// gives the defaults (32768 entries, 16 shards, no observer).
var NewEvalCache = evalcache.New

// Telemetry: the typed observation surface of a search, attached through
// Options.Observer (see "Observing a search" in the package docs).
type (
	// Recorder receives a search's typed events and counter deltas. The
	// shipped sinks implement it; so can any caller type.
	Recorder = telemetry.Recorder
	// Event is one typed occurrence in a search's lifecycle; switch on
	// the concrete ...Event types or dispatch on Event.Kind().
	Event = telemetry.Event
	// EventKind discriminates event types ("search_start", "generation",
	// ...).
	EventKind = telemetry.Kind
	// Counters are the monotonic search counters, delivered as deltas to
	// Recorder.Add.
	Counters = telemetry.Counters

	// SearchStartEvent opens a search's event stream.
	SearchStartEvent = telemetry.SearchStart
	// PhaseChangeEvent marks a phase transition (e.g. the padding →
	// tiling hand-off, or finalisation).
	PhaseChangeEvent = telemetry.PhaseChange
	// GenerationDoneEvent reports one completed GA generation.
	GenerationDoneEvent = telemetry.GenerationDone
	// EvaluationBatchEvent reports one objective evaluation over the
	// shared sample (or, under multi-fidelity evaluation, one sample
	// prefix range, tagged with its rung).
	EvaluationBatchEvent = telemetry.EvaluationBatch
	// EvaluationRungEvent reports one completed successive-halving rung
	// of a multi-fidelity search: sample prefix size, cohort size and
	// how many candidates were promoted or pruned.
	EvaluationRungEvent = telemetry.EvaluationRung
	// IslandMigrationEvent reports one ring elite exchange of a
	// multi-island search (Options.Islands > 1).
	IslandMigrationEvent = telemetry.IslandMigration
	// CheckpointWrittenEvent reports a persisted search snapshot.
	CheckpointWrittenEvent = telemetry.CheckpointWritten
	// EvaluationQuarantinedEvent reports a candidate set aside under
	// FailQuarantine; a run that emits it completed degraded.
	EvaluationQuarantinedEvent = telemetry.EvaluationQuarantined
	// CheckpointRecoveredEvent reports a resume that fell back to the
	// rotated previous-good snapshot.
	CheckpointRecoveredEvent = telemetry.CheckpointRecovered
	// JournalRecoveredEvent reports one journaled request replayed after
	// a tilingd restart (resumed from a checkpoint or re-run fresh).
	JournalRecoveredEvent = telemetry.JournalRecovered
	// JournalSkippedEvent reports one torn or corrupt journal record
	// quarantined during startup replay.
	JournalSkippedEvent = telemetry.JournalSkipped
	// EvalCacheHitEvent, EvalCacheMissEvent and EvalCacheEvictEvent
	// report shared evaluation-cache operations (Options.SharedCache);
	// the matching monotonic totals ride Counters.
	EvalCacheHitEvent   = telemetry.EvalCacheHit
	EvalCacheMissEvent  = telemetry.EvalCacheMiss
	EvalCacheEvictEvent = telemetry.EvalCacheEvict
	// SearchStopEvent closes a search's event stream with its outcome.
	SearchStopEvent = telemetry.SearchStop

	// JSONLSink logs every event as one JSON line (deterministic for a
	// fixed seed with Workers=1 unless Timestamps is set).
	JSONLSink = sinks.JSONL
	// TTYSink prints human-readable progress lines.
	TTYSink = sinks.TTY
	// ExpvarSink aggregates counters into an expvar map.
	ExpvarSink = sinks.Expvar
)

// Sink constructors and recorder composition.
var (
	// NewJSONLSink returns a JSONL event log writing to w; call Close to
	// flush the final counters line.
	NewJSONLSink = sinks.NewJSONL
	// NewTTYSink returns a progress writer for w.
	NewTTYSink = sinks.NewTTY
	// NewExpvarSink returns an expvar aggregate registered under name.
	NewExpvarSink = sinks.NewExpvar
	// MultiRecorder fans events and counters out to several recorders
	// (nil entries are skipped; all-nil collapses to nil).
	MultiRecorder = telemetry.Multi
)

// WriteCheckpoint and ReadCheckpoint (de)serialise search snapshots as
// JSON for persistence across processes.
var (
	WriteCheckpoint = ga.WriteCheckpoint
	ReadCheckpoint  = ga.ReadCheckpoint
)

// Fault tolerance: how a search behaves when an evaluation breaks, an
// evaluation hangs, or checkpoint/log I/O fails — and the deterministic
// fault-injection harness the chaos suite drives those paths with.
type (
	// FailurePolicy selects what a search does when one objective
	// evaluation fails (FailAbort, the zero value, preserves the
	// historical fail-the-search contract; FailQuarantine sets the
	// candidate aside and completes degraded).
	FailurePolicy = core.FailurePolicy
	// QuarantinedEval records one candidate set aside under
	// FailQuarantine, with the phase it failed in and why.
	QuarantinedEval = core.QuarantinedEval

	// FaultPlan is a deterministic, seeded schedule of injected faults;
	// thread it into a search with WithFaults and into checkpoint
	// persistence with InstallCheckpointFaults.
	FaultPlan = faultinject.Plan
	// FaultRule arms one fault point with its trigger (After/Times/Prob)
	// and action (error, panic, or stall).
	FaultRule = faultinject.Rule
	// Fault is the error an armed fault point returns; detect it with
	// IsFault (or errors.As).
	Fault = faultinject.Fault
)

// The two failure policies.
const (
	FailAbort      = core.FailAbort
	FailQuarantine = core.FailQuarantine
)

// The fault points the pipeline exposes (the spec keys ParseFaultSpec
// accepts).
const (
	FaultEvalPanic       = faultinject.EvalPanic
	FaultEvalStall       = faultinject.EvalStall
	FaultCheckpointWrite = faultinject.CheckpointWrite
	FaultSinkWrite       = faultinject.SinkWrite
	FaultJournalWrite    = faultinject.JournalWrite
	FaultJournalReplay   = faultinject.JournalReplay
)

// ErrStalled marks an evaluation the Options.StallTimeout watchdog gave
// up on; under FailQuarantine the stalled candidate is quarantined and
// the search continues.
var ErrStalled = core.ErrStalled

// Fault-tolerance helpers.
var (
	// ParseFailurePolicy parses "abort" or "quarantine" ("" means abort)
	// — the -failure-policy CLI flag format.
	ParseFailurePolicy = core.ParseFailurePolicy
	// NewFaultPlan builds a fault plan from explicit rules.
	NewFaultPlan = faultinject.New
	// ParseFaultSpec parses the compact CLI spec, e.g.
	// "seed=1;eval.panic:after=3,times=1;sink.write:prob=0.01".
	ParseFaultSpec = faultinject.Parse
	// WithFaults threads a fault plan into the context a search runs
	// under; searches with no plan in context never see a fault.
	WithFaults = faultinject.With
	// FaultsFrom retrieves the plan WithFaults stored (nil when absent).
	FaultsFrom = faultinject.From
	// IsFault reports whether err (or anything it wraps) is an injected
	// fault rather than an organic failure.
	IsFault = faultinject.Is
	// FaultWriter wraps an io.Writer so the plan's sink.write point can
	// fail its writes; used to exercise telemetry-log I/O failures.
	FaultWriter = faultinject.Writer
)

// Durable checkpoint files: atomic write with fsync and previous-good
// rotation, and the matching fallback-aware loader.
var (
	// SaveCheckpointFile durably persists a checkpoint: temp file +
	// fsync + rotate the old snapshot to PrevCheckpointFile(path) +
	// rename, with transient-failure retries.
	SaveCheckpointFile = cliutil.SaveCheckpoint
	// LoadCheckpointFile reads path, falling back to the rotated
	// previous-good copy when the primary is missing or corrupt; the
	// fallback is reported on obs as a CheckpointRecoveredEvent and via
	// the recovered return.
	LoadCheckpointFile = cliutil.LoadCheckpoint
	// PrevCheckpointFile names the rotated previous-good snapshot for a
	// checkpoint path.
	PrevCheckpointFile = cliutil.PrevCheckpoint
	// InstallCheckpointFaults arms SaveCheckpointFile with a fault plan
	// (nil disarms); the chaos suite uses it to break checkpoint writes.
	InstallCheckpointFaults = cliutil.InstallFaults
)

// OptimizeTiling searches tile sizes with the CME+GA method of §3. The
// context bounds the search: on cancellation or deadline expiry it stops
// at the next candidate boundary and returns the best tile found so far,
// with the reason in TilingResult.Stopped — not an error.
func OptimizeTiling(ctx context.Context, nest *Nest, opt Options) (*TilingResult, error) {
	return core.OptimizeTiling(ctx, nest, opt)
}

// OptimizeTilingOrder searches tile sizes together with the interchange
// order of the tile loops — the full "strip-mining + interchange" space
// (an extension of the paper's fixed-order search).
func OptimizeTilingOrder(ctx context.Context, nest *Nest, opt Options) (*OrderedTilingResult, error) {
	return core.OptimizeTilingOrder(ctx, nest, opt)
}

// OptimizeTilingMultiLevel searches tile sizes against a whole cache
// hierarchy, minimising the penalty-weighted replacement-miss cost (an
// extension; the paper evaluates one level at a time).
func OptimizeTilingMultiLevel(ctx context.Context, nest *Nest, levels []Level, opt Options) (*MultiLevelResult, error) {
	return core.OptimizeTilingMultiLevel(ctx, nest, levels, opt)
}

// OptimizePadding searches inter-/intra-array padding (§4.3, [28]).
func OptimizePadding(ctx context.Context, nest *Nest, opt Options) (*PaddingResult, error) {
	return core.OptimizePadding(ctx, nest, opt)
}

// OptimizePaddingThenTiling runs the two searches sequentially (Table 3);
// the context covers both phases.
func OptimizePaddingThenTiling(ctx context.Context, nest *Nest, opt Options) (*CombinedResult, error) {
	return core.OptimizePaddingThenTiling(ctx, nest, opt)
}

// OptimizeJoint searches padding and tiling in a single genome (the
// paper's stated future work).
func OptimizeJoint(ctx context.Context, nest *Nest, opt Options) (*CombinedResult, error) {
	return core.OptimizeJoint(ctx, nest, opt)
}

// Simulate runs the nest's full reference trace through a trace-driven
// LRU simulator and returns exact miss statistics — the ground truth the
// analytical model is validated against.
func Simulate(nest *Nest, cfg CacheConfig) Stats {
	return cachesim.SimulateNest(nest, cfg)
}

// AnalyzeExact classifies every access of the nest with the CME point
// solver (exhaustive; small nests only) and returns the aggregate counts.
// It equals Simulate access-for-access.
func AnalyzeExact(nest *Nest, cfg CacheConfig) (Stats, error) {
	box, err := tiling.Box(nest)
	if err != nil {
		return Stats{}, err
	}
	an, err := cme.NewAnalyzer(nest, box, cfg)
	if err != nil {
		return Stats{}, err
	}
	return an.ExhaustiveStats(), nil
}

// ApplyTiling tiles the nest with the given tile vector, returning the
// transformed nest (Figure 3(b) form).
func ApplyTiling(nest *Nest, tile []int64) (*Nest, error) {
	tiled, _, err := tiling.Apply(nest, tile)
	return tiled, err
}

// ParseKernel reads a textual loop-nest description (the format documented
// in internal/parser: array declarations followed by one perfect do-nest
// of read/write references) and returns the nest.
func ParseKernel(r io.Reader, name string) (*Nest, error) {
	prog, err := parser.Parse(r, name)
	if err != nil {
		return nil, err
	}
	return prog.Nest, nil
}

// ParseKernelFile is ParseKernel over a file path.
func ParseKernelFile(path string) (*Nest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseKernel(f, path)
}

// Kernels returns the Table-1 benchmark catalog.
func Kernels() []Kernel { return kernels.All() }

// GetKernel looks a benchmark kernel up by its Table-1 name.
func GetKernel(name string) (Kernel, bool) { return kernels.Get(name) }

// PaperSampleSize is the §2.3 sample size (164 iteration points for a
// width-0.1 interval at 90% confidence).
const PaperSampleSize = sampling.PaperSampleSize

// SetProfileLabels toggles pprof labels (kernel, phase, fidelity rung) on
// the parallel evaluation worker goroutines, so CPU profiles of a search
// break down by what was being evaluated. Off by default: labelling costs
// a context allocation per evaluation batch, which the zero-cost
// nil-observer contract keeps off the hot path unless asked for.
var SetProfileLabels = sampling.SetProfileLabels

// assert the facade types stay usable as iterspace consumers.
var _ iterspace.Space = (*iterspace.Box)(nil)
