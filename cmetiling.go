// Package cmetiling reproduces "Near-Optimal Loop Tiling by means of Cache
// Miss Equations and Genetic Algorithms" (Abella, González, Llosa, Vera —
// ICPP Workshops 2002): an automatic tile-size (and padding) selector for
// perfectly nested affine loops, driven by an exact analytical cache model
// (Cache Miss Equations) solved by iteration-space traversal with simple
// random sampling, and searched with a genetic algorithm.
//
// # Quick start
//
//	k, _ := cmetiling.GetKernel("MM")            // Figure-1 matrix multiply
//	nest, _ := k.Instance(500)                   // N=500 instance
//	res, _ := cmetiling.OptimizeTiling(nest, cmetiling.Options{
//		Cache: cmetiling.DM8K,                   // 8KB direct-mapped, 32B lines
//		Seed:  1,
//	})
//	fmt.Printf("tile %v: %.1f%% -> %.1f%% replacement misses\n",
//		res.Tile, 100*res.Before.ReplacementRatio, 100*res.After.ReplacementRatio)
//
// Custom loop nests are built from the ir package's types (re-exported
// here): arrays with explicit layout, affine references, rectangular
// loops. See examples/ for complete programs.
//
// # Architecture
//
//   - internal/ir, internal/expr: the affine loop-nest representation.
//   - internal/iterspace: rectangular and tiled iteration spaces (§2.4's
//     2ⁿ convex regions), traversal and uniform sampling.
//   - internal/reuse: Wolf–Lam reuse vectors.
//   - internal/cme: Cache Miss Equations — the exact per-access point
//     solver (§2.2–2.3) and the symbolic equation generator (§2.1).
//   - internal/sampling: the §2.3 statistical estimator (164 points for a
//     width-0.1, 90%-confidence interval).
//   - internal/ga: the §3.2–3.3 genetic algorithm.
//   - internal/tiling, internal/padding: the program transformations.
//   - internal/core: the searches gluing it all together.
//   - internal/cachesim: the trace-driven simulator used as ground truth.
//   - internal/kernels: all Table-1 benchmark kernels.
//   - internal/experiments: regeneration of every table and figure.
package cmetiling

import (
	"context"
	"io"
	"os"

	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/cme"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/ga"
	"repro/internal/ir"
	"repro/internal/iterspace"
	"repro/internal/kernels"
	"repro/internal/parser"
	"repro/internal/sampling"
	"repro/internal/tiling"
)

// Cache geometry.
type (
	// CacheConfig describes a cache: size, line size, associativity.
	CacheConfig = cache.Config
)

// The paper's two evaluated configurations.
var (
	// DM8K is an 8KB direct-mapped cache with 32-byte lines.
	DM8K = cache.DM8K
	// DM32K is a 32KB direct-mapped cache with 32-byte lines.
	DM32K = cache.DM32K
)

// Loop-nest construction.
type (
	// Nest is a perfectly nested affine loop nest.
	Nest = ir.Nest
	// Loop is one loop of a nest.
	Loop = ir.Loop
	// Array is a program array with explicit memory layout.
	Array = ir.Array
	// Ref is an affine array reference.
	Ref = ir.Ref
	// Affine is an affine expression over loop variables.
	Affine = expr.Affine
)

// Expression helpers for building references and bounds.
var (
	// Const builds a constant expression.
	Const = expr.Const
	// Var builds the expression v_i for loop depth i (0 = outermost).
	Var = expr.Var
	// VarPlus builds v_i + c.
	VarPlus = expr.VarPlus
	// BoundOf wraps an expression as a loop upper bound.
	BoundOf = ir.BoundOf
	// LayoutArrays assigns consecutive aligned base addresses.
	LayoutArrays = ir.LayoutArrays
)

// Searches (the paper's contribution).
type (
	// Options configures a search; the zero value plus a Cache gives the
	// paper's parameters (164 sample points, population 30, pc 0.9,
	// pm 0.001, 15–25 generations).
	Options = core.Options
	// TilingResult reports a tile search.
	TilingResult = core.TilingResult
	// PaddingResult reports a padding search.
	PaddingResult = core.PaddingResult
	// CombinedResult reports padding+tiling (sequential or joint).
	CombinedResult = core.CombinedResult
	// OrderedTilingResult reports the tile-size + loop-order search.
	OrderedTilingResult = core.OrderedTilingResult
	// Level couples a cache level with its miss penalty.
	Level = core.Level
	// MultiLevelResult reports a cache-hierarchy tile search.
	MultiLevelResult = core.MultiLevelResult
	// Estimate is a sampled miss-ratio estimate with confidence interval.
	Estimate = sampling.Estimate
	// Stats are exact or sampled access-outcome counts.
	Stats = cachesim.Stats
	// Kernel is a Table-1 benchmark kernel.
	Kernel = kernels.Kernel
)

// Search runtime: every search is cancellable, deadline- and
// budget-bounded, and degrades gracefully to its best-so-far result.
type (
	// StopReason explains why a search ended (StopConverged is the
	// paper's Figure-7 schedule; the others mark bounded runs whose
	// results are still valid best-so-far candidates).
	StopReason = ga.StopReason
	// Progress is the per-generation report delivered to
	// Options.Progress.
	Progress = ga.Progress
	// Checkpoint is a resumable generation-boundary snapshot of a
	// search, written through Options.Checkpoint and restored through
	// Options.ResumeFrom.
	Checkpoint = ga.Checkpoint
)

// The stop reasons a bounded search can report.
const (
	StopConverged = ga.StopConverged
	StopDeadline  = ga.StopDeadline
	StopBudget    = ga.StopBudget
	StopCancelled = ga.StopCancelled
)

// WriteCheckpoint and ReadCheckpoint (de)serialise search snapshots as
// JSON for persistence across processes.
var (
	WriteCheckpoint = ga.WriteCheckpoint
	ReadCheckpoint  = ga.ReadCheckpoint
)

// OptimizeTiling searches tile sizes with the CME+GA method of §3.
func OptimizeTiling(nest *Nest, opt Options) (*TilingResult, error) {
	return core.OptimizeTiling(context.Background(), nest, opt)
}

// OptimizeTilingContext is OptimizeTiling bounded by a context: on
// cancellation or deadline expiry the search stops at the next candidate
// boundary and returns the best tile found so far, with the reason in
// TilingResult.Stopped — not an error.
func OptimizeTilingContext(ctx context.Context, nest *Nest, opt Options) (*TilingResult, error) {
	return core.OptimizeTiling(ctx, nest, opt)
}

// OptimizeTilingOrder searches tile sizes together with the interchange
// order of the tile loops — the full "strip-mining + interchange" space
// (an extension of the paper's fixed-order search).
func OptimizeTilingOrder(nest *Nest, opt Options) (*OrderedTilingResult, error) {
	return core.OptimizeTilingOrder(context.Background(), nest, opt)
}

// OptimizeTilingOrderContext is OptimizeTilingOrder bounded by a context.
func OptimizeTilingOrderContext(ctx context.Context, nest *Nest, opt Options) (*OrderedTilingResult, error) {
	return core.OptimizeTilingOrder(ctx, nest, opt)
}

// OptimizeTilingMultiLevel searches tile sizes against a whole cache
// hierarchy, minimising the penalty-weighted replacement-miss cost (an
// extension; the paper evaluates one level at a time).
func OptimizeTilingMultiLevel(nest *Nest, levels []Level, opt Options) (*MultiLevelResult, error) {
	return core.OptimizeTilingMultiLevel(context.Background(), nest, levels, opt)
}

// OptimizeTilingMultiLevelContext is OptimizeTilingMultiLevel bounded by a
// context.
func OptimizeTilingMultiLevelContext(ctx context.Context, nest *Nest, levels []Level, opt Options) (*MultiLevelResult, error) {
	return core.OptimizeTilingMultiLevel(ctx, nest, levels, opt)
}

// OptimizePadding searches inter-/intra-array padding (§4.3, [28]).
func OptimizePadding(nest *Nest, opt Options) (*PaddingResult, error) {
	return core.OptimizePadding(context.Background(), nest, opt)
}

// OptimizePaddingContext is OptimizePadding bounded by a context.
func OptimizePaddingContext(ctx context.Context, nest *Nest, opt Options) (*PaddingResult, error) {
	return core.OptimizePadding(ctx, nest, opt)
}

// OptimizePaddingThenTiling runs the two searches sequentially (Table 3).
func OptimizePaddingThenTiling(nest *Nest, opt Options) (*CombinedResult, error) {
	return core.OptimizePaddingThenTiling(context.Background(), nest, opt)
}

// OptimizePaddingThenTilingContext is OptimizePaddingThenTiling bounded by
// a context covering both phases.
func OptimizePaddingThenTilingContext(ctx context.Context, nest *Nest, opt Options) (*CombinedResult, error) {
	return core.OptimizePaddingThenTiling(ctx, nest, opt)
}

// OptimizeJoint searches padding and tiling in a single genome (the
// paper's stated future work).
func OptimizeJoint(nest *Nest, opt Options) (*CombinedResult, error) {
	return core.OptimizeJoint(context.Background(), nest, opt)
}

// OptimizeJointContext is OptimizeJoint bounded by a context.
func OptimizeJointContext(ctx context.Context, nest *Nest, opt Options) (*CombinedResult, error) {
	return core.OptimizeJoint(ctx, nest, opt)
}

// Simulate runs the nest's full reference trace through a trace-driven
// LRU simulator and returns exact miss statistics — the ground truth the
// analytical model is validated against.
func Simulate(nest *Nest, cfg CacheConfig) Stats {
	return cachesim.SimulateNest(nest, cfg)
}

// AnalyzeExact classifies every access of the nest with the CME point
// solver (exhaustive; small nests only) and returns the aggregate counts.
// It equals Simulate access-for-access.
func AnalyzeExact(nest *Nest, cfg CacheConfig) (Stats, error) {
	box, err := tiling.Box(nest)
	if err != nil {
		return Stats{}, err
	}
	an, err := cme.NewAnalyzer(nest, box, cfg)
	if err != nil {
		return Stats{}, err
	}
	return an.ExhaustiveStats(), nil
}

// ApplyTiling tiles the nest with the given tile vector, returning the
// transformed nest (Figure 3(b) form).
func ApplyTiling(nest *Nest, tile []int64) (*Nest, error) {
	tiled, _, err := tiling.Apply(nest, tile)
	return tiled, err
}

// ParseKernel reads a textual loop-nest description (the format documented
// in internal/parser: array declarations followed by one perfect do-nest
// of read/write references) and returns the nest.
func ParseKernel(r io.Reader, name string) (*Nest, error) {
	prog, err := parser.Parse(r, name)
	if err != nil {
		return nil, err
	}
	return prog.Nest, nil
}

// ParseKernelFile is ParseKernel over a file path.
func ParseKernelFile(path string) (*Nest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseKernel(f, path)
}

// Kernels returns the Table-1 benchmark catalog.
func Kernels() []Kernel { return kernels.All() }

// GetKernel looks a benchmark kernel up by its Table-1 name.
func GetKernel(name string) (Kernel, bool) { return kernels.Get(name) }

// PaperSampleSize is the §2.3 sample size (164 iteration points for a
// width-0.1 interval at 90% confidence).
const PaperSampleSize = sampling.PaperSampleSize

// assert the facade types stay usable as iterspace consumers.
var _ iterspace.Space = (*iterspace.Box)(nil)
