package cmetiling_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildTilingd compiles the daemon once per test.
func buildTilingd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tilingd")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/tilingd")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build tilingd: %v\n%s", err, out)
	}
	return bin
}

// startTilingd launches the daemon and parses its listen address from
// stderr. The returned stop function is safe to call more than once.
func startTilingd(t *testing.T, bin string, args ...string) (*exec.Cmd, string, func()) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start tilingd: %v", err)
	}
	stop := func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}
	addrCh := make(chan string, 1)
	go func() {
		buf := make([]byte, 4096)
		var acc strings.Builder
		for {
			n, rerr := stderr.Read(buf)
			acc.Write(buf[:n])
			if i := strings.Index(acc.String(), "listening on "); i >= 0 {
				rest := acc.String()[i+len("listening on "):]
				if j := strings.IndexByte(rest, '\n'); j >= 0 {
					addrCh <- strings.TrimSpace(rest[:j])
					break
				}
			}
			if rerr != nil {
				addrCh <- ""
				return
			}
		}
		// Keep draining so the daemon never blocks on stderr.
		for {
			if _, rerr := stderr.Read(buf); rerr != nil {
				return
			}
		}
	}()
	select {
	case addr := <-addrCh:
		if addr == "" {
			stop()
			t.Fatalf("tilingd exited before announcing its address")
		}
		return cmd, addr, stop
	case <-time.After(20 * time.Second):
		stop()
		t.Fatalf("tilingd never announced its address")
		return nil, "", nil
	}
}

// killRequest is slow by construction (workers:1 plus an injected 25ms
// stall per evaluation gives the kill a multi-second window) yet fully
// deterministic for its seed: the stall delays evaluations without
// changing any result.
const killRequest = `{"kernel":"MM","size":48,"cache":"8k","seed":7,"maxEvaluations":300,"timeoutMs":60000,"workers":1}`

// postTile sends one tile request with an optional idempotency key.
func postTile(t *testing.T, addr, body, key string) (int, []byte, http.Header, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/tile", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, b, resp.Header, nil
}

// expvarCounter reads one counter from /debug/vars (0 when absent).
func expvarCounter(addr, name string) float64 {
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		return 0
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(vars["tilingd"], &m); err != nil {
		return 0
	}
	var v float64
	_ = json.Unmarshal(m[name], &v)
	return v
}

// TestCrashChaosKillMidSearch is the durability tentpole end to end on
// the real binary: SIGKILL the daemon mid-search, restart it over the
// same state dir, and require that (a) the journal replays the accepted
// request, (b) the idempotent retry is served recorded bytes, and (c)
// those bytes are bit-identical to a crash-free run of the same request.
func TestCrashChaosKillMidSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTilingd(t)

	// Reference: the uninterrupted run on a pristine daemon.
	_, refAddr, stopRef := startTilingd(t, bin)
	defer stopRef()
	st, want, _, err := postTile(t, refAddr, killRequest, "")
	if err != nil || st != http.StatusOK {
		t.Fatalf("reference run: status %d err %v", st, err)
	}
	stopRef()

	state := t.TempDir()
	victim, addr, stopVictim := startTilingd(t, bin,
		"-state-dir", state,
		"-checkpoint-interval", "0",
		"-fault-spec", "eval.stall:stall=25ms")
	defer stopVictim()

	// Fire the request; the client dies with the server, which is fine —
	// the journal, not the connection, owns the request now.
	go func() { _, _, _, _ = postTile(t, addr, killRequest, "kill-1") }()

	// SIGKILL as soon as the first generation snapshot is on disk.
	ckpts := filepath.Join(state, "checkpoints", "*.ckpt")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if m, _ := filepath.Glob(ckpts); len(m) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint appeared under %s", ckpts)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_ = victim.Wait()

	// Restart over the same state dir (no stall fault: recovery runs at
	// full speed). The journal must replay the killed request.
	_, addr2, stopHeir := startTilingd(t, bin, "-state-dir", state)
	defer stopHeir()
	deadline = time.Now().Add(60 * time.Second)
	for expvarCounter(addr2, "journal_recovered") < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("restart never recovered the journaled request")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The retry is answered the recorded bytes — and they match the
	// crash-free run exactly (fixed seed resume contract, end to end).
	st2, got, h, err := postTile(t, addr2, killRequest, "kill-1")
	if err != nil || st2 != http.StatusOK {
		t.Fatalf("retry after crash: status %d err %v", st2, err)
	}
	if src := h.Get("X-Tilingd-Cache"); src != "journal" {
		t.Fatalf("retry source = %q, want journal", src)
	}
	if string(got) != string(want) {
		t.Fatalf("post-crash response differs from crash-free run:\n%s\n%s", got, want)
	}
	// No accepted request was lost, no spurious extras were invented.
	if n := expvarCounter(addr2, "journal_recovered"); n != 1 {
		t.Fatalf("journal_recovered = %v, want 1", n)
	}
}

// TestCrashChaosSlowLorisHeaderTimeout proves the hardened http.Server
// drops a connection that dribbles its headers instead of pinning a
// goroutine forever, and that the daemon stays healthy afterwards.
func TestCrashChaosSlowLorisHeaderTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTilingd(t)
	_, addr, stop := startTilingd(t, bin, "-read-header-timeout", "300ms")
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a request, then silence: the server must hang up on its own.
	if _, err := fmt.Fprintf(conn, "POST /v1/tile HTTP/1.1\r\nHost: tilingd\r\nX-Dribble: "); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	start := time.Now()
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		// A 408 body counts too; the point is the connection terminates.
		_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		if _, err2 := io.Copy(io.Discard, conn); err2 != nil && !os.IsTimeout(err2) {
			t.Logf("post-408 read: %v", err2)
		}
	} else if os.IsTimeout(err) {
		t.Fatalf("connection still open %v after partial headers", time.Since(start))
	}
	if took := time.Since(start); took > 8*time.Second {
		t.Fatalf("slow-loris connection lived %v, want < read-header-timeout + slack", took)
	}

	// The daemon is unharmed: health and a real request still work.
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz after slow-loris: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d after slow-loris", resp.StatusCode)
	}
}

// TestCrashChaosCorruptJournalBoots plants garbage in the journal and
// requires the daemon to boot anyway, quarantining the damage and
// reporting it on /healthz.
func TestCrashChaosCorruptJournalBoots(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTilingd(t)
	state := t.TempDir()
	jdir := filepath.Join(state, "journal")
	if err := os.MkdirAll(jdir, 0o755); err != nil {
		t.Fatal(err)
	}
	// A segment of pure garbage plus a torn half-line.
	if err := os.WriteFile(filepath.Join(jdir, "seg-00000001.wal"),
		[]byte("not json at all\n{\"crc\":\"dead\",\"rec\":{\"op\":\"accept"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, addr, stop := startTilingd(t, bin, "-state-dir", state)
	defer stop()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("daemon refused to boot over corrupt journal: %v", err)
	}
	defer resp.Body.Close()
	var h struct {
		Status         string `json:"status"`
		JournalSkipped int    `json:"journalSkipped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.JournalSkipped != 2 {
		t.Fatalf("healthz = %+v, want ok with 2 quarantined records", h)
	}
	// And it still serves.
	st, _, _, err := postTile(t, addr, `{"kernel":"MM","size":48,"cache":"8k","seed":1,"maxEvaluations":40}`, "")
	if err != nil || st != http.StatusOK {
		t.Fatalf("tile over quarantined journal: status %d err %v", st, err)
	}
}
