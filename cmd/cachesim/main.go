// Command cachesim runs a kernel's full reference trace through the
// trace-driven LRU cache simulator, optionally after tiling, and prints
// the exact miss breakdown including the conflict/capacity split.
//
// Usage:
//
//	cachesim -kernel T2D -size 200 -cache 8k
//	cachesim -kernel MM -size 100 -tile 8,8,32
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"repro/internal/cachesim"
	"repro/internal/cliutil"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/parser"
	"repro/internal/tiling"
	"repro/internal/trace"
)

func main() {
	var (
		kernel  = flag.String("kernel", "T2D", "kernel name from the Table-1 catalog")
		file    = flag.String("file", "", "path to a textual kernel description (overrides -kernel)")
		size    = flag.Int64("size", 0, "problem size (0 = kernel default)")
		cacheF  = flag.String("cache", "8k", "cache config: 8k, 32k, or size:line:assoc")
		tileF   = flag.String("tile", "", "comma-separated tile sizes (empty = untiled)")
		limit   = flag.Uint64("limit", 200_000_000, "refuse traces longer than this many accesses")
		workers = flag.Int("workers", 1, "run the shadow, traffic, and per-ref simulations concurrently (>1); never changes the output")
		version = cliutil.VersionFlag()
	)
	flag.Parse()
	cliutil.HandleVersion("cachesim", version)

	cfg, err := cliutil.ParseCache(*cacheF)
	if err != nil {
		fatal(err)
	}
	var nest *ir.Nest
	if *file != "" {
		prog, perr := loadKernel(*file)
		if perr != nil {
			fatal(perr)
		}
		nest = prog
	} else {
		k, ok := kernels.Get(*kernel)
		if !ok {
			fatal(fmt.Errorf("unknown kernel %q", *kernel))
		}
		var ierr error
		nest, ierr = k.Instance(*size)
		if ierr != nil {
			fatal(ierr)
		}
	}
	if *tileF != "" {
		tile, err := cliutil.ParseTile(*tileF, nest.Depth())
		if err != nil {
			fatal(err)
		}
		nest, _, err = tiling.Apply(nest, tile)
		if err != nil {
			fatal(err)
		}
	}
	points, accesses := trace.Count(nest)
	if accesses > *limit {
		fatal(fmt.Errorf("trace has %d accesses (> -limit %d); pick a smaller size", accesses, *limit))
	}
	fmt.Printf("kernel %s  cache %v  points %d  accesses %d\n", nest.Name, cfg, points, accesses)

	// The three simulations are independent passes over the same nest;
	// -workers>1 overlaps them. Results are printed in the fixed order
	// below either way, so the output is identical.
	var (
		st  cachesim.Stats
		tr  cachesim.Traffic
		per []cachesim.RefStats
	)
	run := func(fns ...func()) {
		if *workers <= 1 {
			for _, fn := range fns {
				fn()
			}
			return
		}
		var wg sync.WaitGroup
		for _, fn := range fns {
			wg.Add(1)
			go func(f func()) { defer wg.Done(); f() }(fn)
		}
		wg.Wait()
	}
	run(
		func() { st = cachesim.SimulateNestShadow(nest, cfg) },
		func() { tr = cachesim.SimulateNestTraffic(nest, cfg) },
		func() { _, per = cachesim.SimulateNestByRef(nest, cfg) },
	)

	fmt.Println(st)
	fmt.Printf("conflict misses: %d  capacity misses: %d\n", st.Conflict, st.Capacity)

	fmt.Printf("write-back traffic: %d fills + %d writebacks = %d bytes\n",
		tr.Fills, tr.Writebacks, tr.BytesMoved(cfg.LineSize))

	fmt.Println("per-reference breakdown:")
	for _, r := range per {
		mode := "read "
		if r.Write {
			mode = "write"
		}
		fmt.Printf("  %s %-18s %s\n", mode, r.Ref, r.Stats)
	}
}

func fatal(err error) {
	cliutil.Fatal("cachesim", err)
}

func loadKernel(path string) (*ir.Nest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	prog, err := parser.Parse(f, path)
	if err != nil {
		return nil, err
	}
	return prog.Nest, nil
}
