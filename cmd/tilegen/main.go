// Command tilegen runs the paper's searches on a benchmark kernel: GA tile
// selection (default), GA padding selection, sequential padding+tiling, or
// the joint single-genome search.
//
// Usage:
//
//	tilegen -kernel MM -size 500 -cache 8k -seed 1
//	tilegen -kernel VPENTA1 -mode padtile
//	tilegen -kernel MM -timeout 2s -budget 100     # bounded search
//	tilegen -kernel MM -checkpoint mm.ckpt         # snapshot each generation
//	tilegen -kernel MM -resume mm.ckpt             # continue where it stopped
//	tilegen -list
//
// Bounded runs (a deadline, an evaluation budget, or Ctrl-C) are not
// failures: the search stops at the next generation boundary and reports
// the best candidate found so far, with the stop reason on the result.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	cmetiling "repro"
	"repro/internal/cliutil"
)

func main() {
	var (
		kernel   = flag.String("kernel", "MM", "kernel name from the Table-1 catalog")
		file     = flag.String("file", "", "path to a textual kernel description (overrides -kernel)")
		size     = flag.Int64("size", 0, "problem size (0 = kernel default)")
		cacheF   = flag.String("cache", "8k", "cache config: 8k, 32k, or size:line:assoc in bytes")
		seed     = flag.Uint64("seed", 1, "random seed (searches are deterministic per seed)")
		points   = flag.Int("points", 0, "sample points per evaluation (0 = paper's 164)")
		mode     = flag.String("mode", "tile", "search mode: tile, order, pad, padtile, joint")
		list     = flag.Bool("list", false, "list the kernel catalog and exit")
		timeout  = flag.Duration("timeout", 0, "search deadline (0 = unbounded)")
		budget   = flag.Int("budget", 0, "max objective evaluations (0 = unbounded)")
		ckptPath = flag.String("checkpoint", "", "write a resumable snapshot here every generation")
		resume   = flag.String("resume", "", "resume the search from this checkpoint file")
		progress = flag.Bool("progress", false, "print per-generation progress to stderr")
		workers  = flag.Int("workers", 0, "evaluation goroutines per objective (0 = CMETILING_WORKERS or min(8, NumCPU)); never changes the result")
		islands  = flag.Int("islands", 0, "GA islands evolving concurrently with elite migration (0/1 = single population); deterministic per seed")
		fidelity = flag.Int("fidelity", 0, "successive-halving rungs for multi-fidelity evaluation (0/1 = classic full fidelity); deterministic per seed")
		traceOut = flag.String("trace-out", "", "append the search's telemetry event stream to this JSONL file")
		metrics  = flag.Bool("metrics", false, "dump aggregate expvar metrics to stderr at exit")
		pprofOut = flag.String("pprof", "", "write a CPU profile to this file")
		policyF  = flag.String("failure-policy", "", "on a broken evaluation: abort (default) or quarantine (complete degraded on best-so-far)")
		stall    = flag.Duration("stall-timeout", 0, "give up on an evaluation batch after this long (0 = no watchdog)")
		faultF   = flag.String("fault-spec", "", "inject deterministic faults, e.g. 'seed=1;eval.panic:after=3,times=1' (chaos testing)")
		version  = cliutil.VersionFlag()
	)
	flag.Parse()
	cliutil.HandleVersion("tilegen", version)

	if *list {
		fmt.Printf("%-10s %-10s %-5s %-18s %s\n", "NAME", "PROGRAM", "DEPTH", "SIZES", "DESCRIPTION")
		for _, k := range cmetiling.Kernels() {
			sizes := "fixed"
			if len(k.Sizes) > 0 {
				parts := make([]string, len(k.Sizes))
				for i, s := range k.Sizes {
					parts[i] = fmt.Sprint(s)
				}
				sizes = strings.Join(parts, ",")
			}
			fmt.Printf("%-10s %-10s %-5d %-18s %s\n", k.Name, k.Program, k.Depth, sizes, k.Description)
		}
		cliutil.Exit(0)
	}

	cfg, err := cliutil.ParseCache(*cacheF)
	if err != nil {
		fatal(err)
	}
	var nest *cmetiling.Nest
	if *file != "" {
		nest, err = cmetiling.ParseKernelFile(*file)
		if err != nil {
			fatal(err)
		}
	} else {
		k, ok := cmetiling.GetKernel(*kernel)
		if !ok {
			fatal(fmt.Errorf("unknown kernel %q (use -list)", *kernel))
		}
		nest, err = k.Instance(*size)
		if err != nil {
			fatal(err)
		}
	}
	opt := cmetiling.Options{
		Cache: cfg, Seed: *seed, SamplePoints: *points,
		Deadline: *timeout, MaxEvaluations: *budget,
		Workers: *workers, Islands: *islands, StallTimeout: *stall,
		Fidelity: cmetiling.Fidelity{Rungs: *fidelity},
	}
	opt.FailurePolicy, err = cmetiling.ParseFailurePolicy(*policyF)
	if err != nil {
		fatal(err)
	}
	var faults *cmetiling.FaultPlan
	if *faultF != "" {
		faults, err = cmetiling.ParseFaultSpec(*faultF)
		if err != nil {
			fatal(err)
		}
		cmetiling.InstallCheckpointFaults(faults)
	}
	// degraded notes why the run finished on a weakened path (quarantined
	// evaluations, lost checkpoint writes, a fallback resume); any entry
	// turns exit 0 into ExitDegraded.
	var degraded []string
	if *progress {
		opt.Progress = func(p cmetiling.Progress) {
			prefix := ""
			if p.Island > 0 {
				prefix = fmt.Sprintf("[i%d] ", p.Island)
			}
			fmt.Fprintf(os.Stderr, "%sgen %2d  best %.6g  evals %d  %v\n",
				prefix, p.Gen, p.BestEver, p.Evaluations, p.Elapsed.Round(time.Millisecond))
		}
	}
	var recorders []cmetiling.Recorder
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		sink := cmetiling.NewJSONLSink(cmetiling.FaultWriter(f, faults, cmetiling.FaultSinkWrite))
		cliutil.AtExit(func() {
			if err := sink.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "tilegen: trace: %v\n", err)
			}
			f.Close()
		})
		recorders = append(recorders, sink)
	}
	if *metrics {
		sink := cmetiling.NewExpvarSink("cmetiling")
		cliutil.AtExit(func() { sink.WriteTo(os.Stderr) })
		recorders = append(recorders, sink)
	}
	opt.Observer = cmetiling.MultiRecorder(recorders...)
	if *pprofOut != "" {
		// Label evaluation workers so the profile attributes samples to
		// kernel, phase and fidelity rung.
		cmetiling.SetProfileLabels(true)
		if err := cliutil.StartCPUProfile(*pprofOut); err != nil {
			fatal(err)
		}
	}
	if *ckptPath != "" {
		// A lost snapshot weakens resumability but should not kill a
		// search that is otherwise making progress: warn, mark the run
		// degraded, and keep going.
		warned := false
		opt.Checkpoint = func(c *cmetiling.Checkpoint) error {
			err := cliutil.SaveCheckpoint(*ckptPath, c)
			if err != nil && !warned {
				warned = true
				degraded = append(degraded, fmt.Sprintf("checkpoint writes failing (%v)", err))
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "tilegen: checkpoint: %v (continuing without snapshot)\n", err)
			}
			return nil
		}
	}
	if *resume != "" {
		c, recovered, err := cliutil.LoadCheckpoint(*resume, opt.Observer)
		if err != nil {
			fatal(fmt.Errorf("resume: %w", err))
		}
		if recovered {
			fmt.Fprintf(os.Stderr, "tilegen: resume: primary checkpoint unusable, resumed from %s\n",
				cliutil.PrevCheckpoint(*resume))
			degraded = append(degraded, "resumed from rotated previous-good checkpoint")
		}
		opt.ResumeFrom = c
	}

	// A first Ctrl-C cancels the search, which then returns its
	// best-so-far tile; a second Ctrl-C kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if faults != nil {
		ctx = cmetiling.WithFaults(ctx, faults)
	}

	fmt.Printf("kernel %s  cache %v  seed %d\n", nest.Name, cfg, *seed)
	fmt.Print(nest.String())

	var stopped cmetiling.StopReason
	var quarantined []cmetiling.QuarantinedEval
	switch *mode {
	case "tile":
		res, err := cmetiling.OptimizeTiling(ctx, nest, opt)
		if err != nil {
			fatal(err)
		}
		stopped, quarantined = res.Stopped, res.Quarantined
		fmt.Printf("\nbest tile: %v (GA: %d generations, %d evaluations)\n",
			res.Tile, res.GA.Generations, res.GA.Evaluations)
		fmt.Printf("before: %v\nafter:  %v\n", res.Before, res.After)
		fmt.Println("\ntiled nest:")
		fmt.Print(res.TiledNest.String())
	case "order":
		res, err := cmetiling.OptimizeTilingOrder(ctx, nest, opt)
		if err != nil {
			fatal(err)
		}
		stopped, quarantined = res.Stopped, res.Quarantined
		fmt.Printf("\nbest tile: %v  tile-loop order: %v (GA: %d generations, %d evaluations)\n",
			res.Tile, res.Order, res.GA.Generations, res.GA.Evaluations)
		fmt.Printf("before: %v\nafter:  %v\n", res.Before, res.After)
		fmt.Println("\ntiled nest:")
		fmt.Print(res.TiledNest.String())
	case "pad":
		res, err := cmetiling.OptimizePadding(ctx, nest, opt)
		if err != nil {
			fatal(err)
		}
		stopped, quarantined = res.Stopped, res.Quarantined
		fmt.Printf("\nbest padding: inter %v intra %v (elements)\n", res.Plan.Inter, res.Plan.Intra)
		fmt.Printf("before: %v\nafter:  %v\n", res.Before, res.After)
	case "padtile":
		res, err := cmetiling.OptimizePaddingThenTiling(ctx, nest, opt)
		if err != nil {
			fatal(err)
		}
		stopped, quarantined = res.Stopped, res.Quarantined
		printCombined(res)
	case "joint":
		res, err := cmetiling.OptimizeJoint(ctx, nest, opt)
		if err != nil {
			fatal(err)
		}
		stopped, quarantined = res.Stopped, res.Quarantined
		printCombined(res)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	if stopped != cmetiling.StopConverged {
		fmt.Printf("\nsearch stopped early (%v); result above is best-so-far\n", stopped)
	}
	if len(quarantined) > 0 {
		degraded = append(degraded, fmt.Sprintf("%d evaluation(s) quarantined", len(quarantined)))
		for _, q := range quarantined {
			fmt.Fprintf(os.Stderr, "tilegen: quarantined [%s] %v: %s\n", q.Phase, q.Values, q.Reason)
		}
	}
	if len(degraded) > 0 {
		fmt.Fprintf(os.Stderr, "tilegen: completed degraded: %s\n", strings.Join(degraded, "; "))
		cliutil.Exit(cliutil.ExitDegraded)
	}
	cliutil.Exit(cliutil.ExitOK)
}

func printCombined(res *cmetiling.CombinedResult) {
	fmt.Printf("\npadding: inter %v intra %v (elements)\ntile: %v\n",
		res.Plan.Inter, res.Plan.Intra, res.Tile)
	fmt.Printf("original:        %v\npadding only:    %v\npadding+tiling:  %v\n",
		res.Original, res.Padded, res.Combined)
}

func fatal(err error) {
	cliutil.Fatal("tilegen", err)
}
