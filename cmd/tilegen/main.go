// Command tilegen runs the paper's searches on a benchmark kernel: GA tile
// selection (default), GA padding selection, sequential padding+tiling, or
// the joint single-genome search.
//
// Usage:
//
//	tilegen -kernel MM -size 500 -cache 8k -seed 1
//	tilegen -kernel VPENTA1 -mode padtile
//	tilegen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	cmetiling "repro"
	"repro/internal/cliutil"
)

func main() {
	var (
		kernel = flag.String("kernel", "MM", "kernel name from the Table-1 catalog")
		file   = flag.String("file", "", "path to a textual kernel description (overrides -kernel)")
		size   = flag.Int64("size", 0, "problem size (0 = kernel default)")
		cacheF = flag.String("cache", "8k", "cache config: 8k, 32k, or size:line:assoc in bytes")
		seed   = flag.Uint64("seed", 1, "random seed (searches are deterministic per seed)")
		points = flag.Int("points", 0, "sample points per evaluation (0 = paper's 164)")
		mode   = flag.String("mode", "tile", "search mode: tile, order, pad, padtile, joint")
		list   = flag.Bool("list", false, "list the kernel catalog and exit")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-10s %-10s %-5s %-18s %s\n", "NAME", "PROGRAM", "DEPTH", "SIZES", "DESCRIPTION")
		for _, k := range cmetiling.Kernels() {
			sizes := "fixed"
			if len(k.Sizes) > 0 {
				parts := make([]string, len(k.Sizes))
				for i, s := range k.Sizes {
					parts[i] = fmt.Sprint(s)
				}
				sizes = strings.Join(parts, ",")
			}
			fmt.Printf("%-10s %-10s %-5d %-18s %s\n", k.Name, k.Program, k.Depth, sizes, k.Description)
		}
		return
	}

	cfg, err := cliutil.ParseCache(*cacheF)
	if err != nil {
		fatal(err)
	}
	var nest *cmetiling.Nest
	if *file != "" {
		nest, err = cmetiling.ParseKernelFile(*file)
		if err != nil {
			fatal(err)
		}
	} else {
		k, ok := cmetiling.GetKernel(*kernel)
		if !ok {
			fatal(fmt.Errorf("unknown kernel %q (use -list)", *kernel))
		}
		nest, err = k.Instance(*size)
		if err != nil {
			fatal(err)
		}
	}
	opt := cmetiling.Options{Cache: cfg, Seed: *seed, SamplePoints: *points}

	fmt.Printf("kernel %s  cache %v  seed %d\n", nest.Name, cfg, *seed)
	fmt.Print(nest.String())

	switch *mode {
	case "tile":
		res, err := cmetiling.OptimizeTiling(nest, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nbest tile: %v (GA: %d generations, %d evaluations)\n",
			res.Tile, res.GA.Generations, res.GA.Evaluations)
		fmt.Printf("before: %v\nafter:  %v\n", res.Before, res.After)
		fmt.Println("\ntiled nest:")
		fmt.Print(res.TiledNest.String())
	case "order":
		res, err := cmetiling.OptimizeTilingOrder(nest, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nbest tile: %v  tile-loop order: %v (GA: %d generations, %d evaluations)\n",
			res.Tile, res.Order, res.GA.Generations, res.GA.Evaluations)
		fmt.Printf("before: %v\nafter:  %v\n", res.Before, res.After)
		fmt.Println("\ntiled nest:")
		fmt.Print(res.TiledNest.String())
	case "pad":
		res, err := cmetiling.OptimizePadding(nest, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nbest padding: inter %v intra %v (elements)\n", res.Plan.Inter, res.Plan.Intra)
		fmt.Printf("before: %v\nafter:  %v\n", res.Before, res.After)
	case "padtile":
		res, err := cmetiling.OptimizePaddingThenTiling(nest, opt)
		if err != nil {
			fatal(err)
		}
		printCombined(res)
	case "joint":
		res, err := cmetiling.OptimizeJoint(nest, opt)
		if err != nil {
			fatal(err)
		}
		printCombined(res)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func printCombined(res *cmetiling.CombinedResult) {
	fmt.Printf("\npadding: inter %v intra %v (elements)\ntile: %v\n",
		res.Plan.Inter, res.Plan.Intra, res.Tile)
	fmt.Printf("original:        %v\npadding only:    %v\npadding+tiling:  %v\n",
		res.Original, res.Padded, res.Combined)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tilegen:", err)
	os.Exit(1)
}
