// Command tilingd serves tiling decisions over HTTP/JSON: POST a kernel
// (catalog name or inline source), a cache geometry and search bounds to
// /v1/tile and get near-optimal tile sizes back. The daemon is built to
// survive sustained load: bounded admission with explicit 429 load
// shedding, per-request deadlines that degrade to best-so-far tiles, a
// singleflight-deduplicated result cache, a process-wide shared
// evaluation cache that lets related searches reuse each other's work, a
// circuit breaker that falls back to a cheap heuristic tiling when
// searches keep failing, and a SIGTERM drain that answers every accepted
// request before exiting.
//
// With -state-dir it also survives crashes: every accepted request is
// journaled durably before its search runs, in-flight searches persist
// resumable generation-boundary checkpoints, and a restart replays the
// journal — duplicate idempotent retries (the Idempotency-Key header)
// get the recorded response bytes, interrupted searches resume from
// their latest snapshot, and torn or corrupt journal records are
// quarantined with telemetry instead of refusing to boot.
//
// Usage:
//
//	tilingd -addr :8080 -state-dir /var/lib/tilingd
//	curl -s localhost:8080/v1/tile -H 'Idempotency-Key: job-17' -d '{"kernel":"MM","size":500,"cache":"8k","seed":1}'
//	curl -s localhost:8080/v1/tile/batch -d '{"requests":[{"kernel":"MM","cache":"8k","seed":1},{"kernel":"T2D","cache":"8k","seed":1}]}'
//
// Endpoints: POST /v1/tile, POST /v1/tile/batch (NDJSON stream),
// GET /v1/kernels, GET /healthz, GET /debug/vars (expvar).
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	cmetiling "repro"
	"repro/internal/cliutil"
	"repro/internal/journal"
	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		conc       = flag.Int("concurrency", 0, "max concurrent searches (0 = min(4, NumCPU))")
		queue      = flag.Int("queue", 64, "admission queue depth; requests beyond it are shed with 429")
		defTimeout = flag.Duration("default-timeout", 30*time.Second, "per-request search deadline when the request names none")
		maxTimeout = flag.Duration("max-timeout", 2*time.Minute, "hard cap on any request's search deadline")
		stall      = flag.Duration("stall-timeout", 10*time.Second, "per-evaluation watchdog on every search")
		cacheEnt   = flag.Int("cache-entries", 512, "result-cache capacity (responses)")
		evalEnt    = flag.Int("evalcache-entries", 0, "shared evaluation-cache capacity (0 = default 32768, negative = disabled)")
		brkFails   = flag.Int("breaker-failures", 5, "consecutive search failures that trip the fallback breaker")
		brkCool    = flag.Duration("breaker-cooldown", 30*time.Second, "how long the tripped breaker serves fallback tilings before probing")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "SIGTERM grace: searches still running after this are cancelled to best-so-far")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint on shed responses")
		islands    = flag.Int("islands", 0, "default GA island count for requests that name none (0 = single population)")
		stateDir   = flag.String("state-dir", "", "durable state directory (request journal + search checkpoints); empty disables crash recovery")
		jsync      = flag.String("journal-sync", "always", "journal append durability: always (fsync per record) or none (OS page cache)")
		ckptEvery  = flag.Duration("checkpoint-interval", 2*time.Second, "min interval between persisted snapshots of one in-flight search (0 = every generation)")
		readHdrTO  = flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout: slow-loris defense, closes connections that dribble headers")
		readTO     = flag.Duration("read-timeout", 2*time.Minute, "http.Server ReadTimeout: full request read bound (0 = unbounded)")
		writeTO    = flag.Duration("write-timeout", 0, "http.Server WriteTimeout (0 = unbounded; when set it must exceed max-timeout and the longest batch)")
		idleTO     = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections")
		traceOut   = flag.String("trace-out", "", "append the server and search telemetry event stream to this JSONL file")
		faultF     = flag.String("fault-spec", "", "inject deterministic faults, e.g. 'seed=1;server.accept:times=2' (chaos testing)")
		version    = cliutil.VersionFlag()
	)
	flag.Parse()
	cliutil.HandleVersion("tilingd", version)

	syncMode, err := journal.ParseSyncMode(*jsync)
	if err != nil {
		cliutil.Fatal("tilingd", err)
	}

	var faults *cmetiling.FaultPlan
	if *faultF != "" {
		var err error
		faults, err = cmetiling.ParseFaultSpec(*faultF)
		if err != nil {
			cliutil.Fatal("tilingd", err)
		}
	}

	// Telemetry: expvar always (served at /debug/vars), JSONL on request.
	recorders := []cmetiling.Recorder{cmetiling.NewExpvarSink("tilingd")}
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			cliutil.Fatal("tilingd", err)
		}
		sink := cmetiling.NewJSONLSink(cmetiling.FaultWriter(f, faults, cmetiling.FaultSinkWrite))
		cliutil.AtExit(func() {
			if err := sink.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "tilingd: trace: %v\n", err)
			}
			f.Close()
		})
		recorders = append(recorders, sink)
	}

	srv, err := server.New(server.Config{
		MaxConcurrent:      *conc,
		QueueDepth:         *queue,
		DefaultTimeout:     *defTimeout,
		MaxTimeout:         *maxTimeout,
		StallTimeout:       *stall,
		CacheEntries:       *cacheEnt,
		EvalCacheEntries:   *evalEnt,
		BreakerThreshold:   *brkFails,
		BreakerCooldown:    *brkCool,
		RetryAfter:         *retryAfter,
		DefaultIslands:     *islands,
		StateDir:           *stateDir,
		JournalSync:        syncMode,
		CheckpointInterval: *ckptEvery,
		Observer:           cmetiling.MultiRecorder(recorders...),
		Faults:             faults,
	})
	if err != nil {
		cliutil.Fatal("tilingd", err)
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	// Timeouts on every connection: a client that dribbles its headers or
	// never reads its response cannot pin a connection (and its goroutine)
	// forever.
	httpSrv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: *readHdrTO,
		ReadTimeout:       *readTO,
		WriteTimeout:      *writeTO,
		IdleTimeout:       *idleTO,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cliutil.Fatal("tilingd", err)
	}
	fmt.Fprintf(os.Stderr, "tilingd: listening on %s\n", ln.Addr())

	// Recovery runs beside live traffic, through the same admission gate:
	// every request the journal holds as accepted-but-unanswered is re-run
	// (resumed from its latest checkpoint when one loads) and its response
	// recorded for the client's retry.
	recoverCtx, stopRecover := context.WithCancel(context.Background())
	defer stopRecover()
	recovered := make(chan int, 1)
	go func() { recovered <- srv.Recover(recoverCtx) }()
	go func() {
		if n := <-recovered; n > 0 {
			fmt.Fprintf(os.Stderr, "tilingd: recovered %d journaled request(s)\n", n)
		}
	}()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		cliutil.Fatal("tilingd", err)
	case <-ctx.Done():
	}

	// Drain: finish (or cancel to best-so-far) every accepted request,
	// then close the listener and idle connections.
	fmt.Fprintf(os.Stderr, "tilingd: draining (grace %v)\n", *drainWait)
	stopRecover()
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	srv.Drain(dctx)
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "tilingd: shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "tilingd: drained, exiting")
	cliutil.Exit(cliutil.ExitOK)
}
