package main

import "testing"

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkClassify/incremental-8   \t  143030\t      7348 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("result line not recognised")
	}
	if b.Name != "Classify/incremental" {
		t.Fatalf("name = %q", b.Name)
	}
	if b.Iterations != 143030 {
		t.Fatalf("iterations = %d", b.Iterations)
	}
	for unit, want := range map[string]float64{"ns/op": 7348, "B/op": 0, "allocs/op": 0} {
		if got := b.Metrics[unit]; got != want {
			t.Fatalf("metric %s = %v, want %v", unit, got, want)
		}
	}

	// Custom ReportMetric units survive.
	b, ok = parseLine("BenchmarkTable2-4   3   123.4 ns/op   5.67 repl%/before")
	if !ok || b.Metrics["repl%/before"] != 5.67 {
		t.Fatalf("custom metric lost: %+v ok=%v", b, ok)
	}

	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t2.6s",
		"--- BENCH: BenchmarkX",
		"Benchmark name without numbers",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("non-result line %q parsed as benchmark", line)
		}
	}
}
