// Command benchjson converts `go test -bench` output into a JSON
// trajectory file, so benchmark results (including custom ReportMetric
// values) can be checked in and compared across PRs.
//
// It reads the benchmark output on stdin. With -out the input is echoed to
// stdout unchanged (so the run stays visible in the terminal) and the JSON
// is written to the file; without -out the JSON goes to stdout.
//
//	go test -run '^$' -bench 'Classify' -benchmem . | benchjson -out BENCH.json
//
// With -compare OLD.json NEW.json it instead diffs two previously emitted
// reports: every benchmark present in both files whose name matches -match
// has its ns/op checked, and the command exits non-zero when NEW is more
// than -threshold percent slower than OLD. This is the `make bench-regress`
// gate that keeps checked-in trajectory files honest across PRs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/cliutil"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the emitted JSON document.
type Report struct {
	GeneratedAt string      `json:"generated_at"`
	GoVersion   string      `json:"go_version"`
	GOOS        string      `json:"goos,omitempty"`
	GOARCH      string      `json:"goarch,omitempty"`
	CPU         string      `json:"cpu,omitempty"`
	Pkg         string      `json:"pkg,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

// parseLine parses one "BenchmarkName-P  N  v1 u1  v2 u2 ..." line,
// returning ok=false for lines that are not benchmark results.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the trailing -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// loadReport reads one emitted Report back from disk.
func loadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %v", path, err)
	}
	return rep, nil
}

// compare diffs the ns/op of benchmarks matching re between two reports and
// returns the names that regressed beyond threshold percent. Benchmarks
// missing from either side are skipped: the gate only judges trajectories
// both files measured.
func compare(oldRep, newRep Report, re *regexp.Regexp, threshold float64) (regressed []string) {
	old := make(map[string]float64, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		if v, ok := b.Metrics["ns/op"]; ok {
			old[b.Name] = v
		}
	}
	for _, b := range newRep.Benchmarks {
		if !re.MatchString(b.Name) {
			continue
		}
		newNs, ok := b.Metrics["ns/op"]
		if !ok {
			continue
		}
		oldNs, ok := old[b.Name]
		if !ok || oldNs <= 0 {
			continue
		}
		delta := 100 * (newNs - oldNs) / oldNs
		verdict := "ok"
		if delta > threshold {
			verdict = "REGRESSION"
			regressed = append(regressed, b.Name)
		}
		fmt.Printf("%-50s %14.0f -> %14.0f ns/op  %+7.1f%%  %s\n",
			b.Name, oldNs, newNs, delta, verdict)
	}
	return regressed
}

func main() {
	out := flag.String("out", "", "write JSON to this file and echo stdin to stdout; empty = JSON to stdout")
	comp := flag.Bool("compare", false, "compare two report files (OLD NEW args) instead of parsing stdin")
	match := flag.String("match", ".", "regexp of benchmark names to judge in -compare mode")
	threshold := flag.Float64("threshold", 20, "percent ns/op slowdown tolerated in -compare mode")
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.HandleVersion("benchjson", version)

	if *comp {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two report files: OLD NEW")
			os.Exit(2)
		}
		re, err := regexp.Compile(*match)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad -match:", err)
			os.Exit(2)
		}
		oldRep, err := loadReport(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		newRep, err := loadReport(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if regressed := compare(oldRep, newRep, re, *threshold); len(regressed) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed beyond %.0f%%: %s\n",
				len(regressed), *threshold, strings.Join(regressed, ", "))
			os.Exit(1)
		}
		return
	}

	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	echo := *out != ""
	for sc.Scan() {
		line := sc.Text()
		if echo {
			fmt.Println(line)
		}
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		default:
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines found on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
