// Command benchjson converts `go test -bench` output into a JSON
// trajectory file, so benchmark results (including custom ReportMetric
// values) can be checked in and compared across PRs.
//
// It reads the benchmark output on stdin. With -out the input is echoed to
// stdout unchanged (so the run stays visible in the terminal) and the JSON
// is written to the file; without -out the JSON goes to stdout.
//
//	go test -run '^$' -bench 'Classify' -benchmem . | benchjson -out BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/cliutil"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the emitted JSON document.
type Report struct {
	GeneratedAt string      `json:"generated_at"`
	GoVersion   string      `json:"go_version"`
	GOOS        string      `json:"goos,omitempty"`
	GOARCH      string      `json:"goarch,omitempty"`
	CPU         string      `json:"cpu,omitempty"`
	Pkg         string      `json:"pkg,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

// parseLine parses one "BenchmarkName-P  N  v1 u1  v2 u2 ..." line,
// returning ok=false for lines that are not benchmark results.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the trailing -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}

func main() {
	out := flag.String("out", "", "write JSON to this file and echo stdin to stdout; empty = JSON to stdout")
	version := cliutil.VersionFlag()
	flag.Parse()
	cliutil.HandleVersion("benchjson", version)

	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	echo := *out != ""
	for sc.Scan() {
		line := sc.Text()
		if echo {
			fmt.Println(line)
		}
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		default:
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines found on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
