// Command experiments regenerates the paper's evaluation: Table 2,
// Figures 8 and 9, Table 3, Table 4, and the §3.3 GA-convergence numbers.
//
// Usage:
//
//	experiments -all                  # everything, full problem sizes
//	experiments -figure8 -quick      # Figure 8 at reduced sizes
//	experiments -table3 -csv out/    # also write CSV files
//
// Every search honours -timeout and -budget and Ctrl-C: an interrupted
// run finishes the current search with its best-so-far candidate, so the
// tables printed before the interrupt are always complete and valid.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"

	cmetiling "repro"
	"repro/internal/cache"
	"repro/internal/cliutil"
	"repro/internal/experiments"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every table and figure")
		table2   = flag.Bool("table2", false, "regenerate Table 2")
		figure8  = flag.Bool("figure8", false, "regenerate Figure 8 (8KB)")
		figure9  = flag.Bool("figure9", false, "regenerate Figure 9 (32KB)")
		table3   = flag.Bool("table3", false, "regenerate Table 3 (both caches)")
		table4   = flag.Bool("table4", false, "regenerate Table 4 (implies figures)")
		conv     = flag.Bool("convergence", false, "measure GA convergence (§3.3)")
		sampChk  = flag.Bool("sampling", false, "validate the §2.3 sampling rule (164 points)")
		assoc    = flag.Bool("assoc", false, "associativity-sweep extension (beyond the paper)")
		inter    = flag.Bool("interchange", false, "interchange-vs-tiling extension (beyond the paper)")
		quick    = flag.Bool("quick", false, "reduced problem sizes (seconds instead of minutes)")
		quickCap = flag.Int64("quickcap", 200, "size ceiling in quick mode")
		seed     = flag.Uint64("seed", 2002, "experiment seed")
		points   = flag.Int("points", 0, "sample points per evaluation (0 = paper's 164)")
		csvDir   = flag.String("csv", "", "directory to write CSV result files into")
		bars     = flag.Bool("bars", false, "also render figures as ASCII bar charts")
		timeout  = flag.Duration("timeout", 0, "per-search deadline (0 = unbounded)")
		budget   = flag.Int("budget", 0, "per-search evaluation budget (0 = unbounded)")
		workers  = flag.Int("workers", 0, "evaluation goroutines per objective (0 = CMETILING_WORKERS or min(8, NumCPU)); never changes results")
		islands  = flag.Int("islands", 0, "GA islands per search, evolving concurrently with elite migration (0/1 = single population)")
		fidelity = flag.Int("fidelity", 0, "successive-halving rungs for multi-fidelity evaluation per search (0/1 = classic full fidelity)")
		traceOut = flag.String("trace-out", "", "append the telemetry event stream of every search to this JSONL file")
		metrics  = flag.Bool("metrics", false, "dump aggregate expvar metrics to stderr at exit")
		pprofOut = flag.String("pprof", "", "write a CPU profile to this file")
		policyF  = flag.String("failure-policy", "", "on a broken evaluation: abort (default) or quarantine (finish the table degraded)")
		stall    = flag.Duration("stall-timeout", 0, "give up on an evaluation batch after this long (0 = no watchdog)")
		faultF   = flag.String("fault-spec", "", "inject deterministic faults, e.g. 'seed=1;eval.panic:after=3,times=1' (chaos testing)")
		version  = cliutil.VersionFlag()
	)
	flag.Parse()
	cliutil.HandleVersion("experiments", version)
	if *all {
		*table2, *figure8, *figure9, *table3, *table4 = true, true, true, true, true
		*conv, *sampChk, *assoc, *inter = true, true, true, true
	}
	if !(*table2 || *figure8 || *figure9 || *table3 || *table4 || *conv || *sampChk || *assoc || *inter) {
		flag.Usage()
		cliutil.Exit(2)
	}
	cfg := experiments.Config{
		Seed: *seed, Quick: *quick, QuickCap: *quickCap, SamplePoints: *points,
		Deadline: *timeout, MaxEvaluations: *budget, Workers: *workers,
		Islands: *islands, FidelityRungs: *fidelity, StallTimeout: *stall,
	}
	var err error
	cfg.FailurePolicy, err = cmetiling.ParseFailurePolicy(*policyF)
	if err != nil {
		fatal(err)
	}
	var faults *cmetiling.FaultPlan
	if *faultF != "" {
		faults, err = cmetiling.ParseFaultSpec(*faultF)
		if err != nil {
			fatal(err)
		}
	}
	var recorders []cmetiling.Recorder
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		sink := cmetiling.NewJSONLSink(cmetiling.FaultWriter(f, faults, cmetiling.FaultSinkWrite))
		cliutil.AtExit(func() {
			if err := sink.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: trace: %v\n", err)
			}
			f.Close()
		})
		recorders = append(recorders, sink)
	}
	if *metrics {
		sink := cmetiling.NewExpvarSink("cmetiling")
		cliutil.AtExit(func() { sink.WriteTo(os.Stderr) })
		recorders = append(recorders, sink)
	}
	// The row types the tables are built from do not carry per-search
	// quarantine lists; the telemetry stream does. Tally quarantine events
	// so a table assembled around set-aside candidates exits degraded.
	quarantined := &quarantineTally{}
	recorders = append(recorders, quarantined)
	cfg.Observer = cmetiling.MultiRecorder(recorders...)
	if *pprofOut != "" {
		// Label evaluation workers so the profile attributes samples to
		// kernel, phase and fidelity rung.
		cmetiling.SetProfileLabels(true)
		if err := cliutil.StartCPUProfile(*pprofOut); err != nil {
			fatal(err)
		}
	}

	// A first Ctrl-C cancels the context: in-flight searches stop at the
	// next generation boundary and report best-so-far; a second Ctrl-C
	// kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if faults != nil {
		ctx = cmetiling.WithFaults(ctx, faults)
	}

	var fig8Rows, fig9Rows []experiments.FigureRow

	if *table2 {
		rows, err := experiments.Table2(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		experiments.RenderTable2(os.Stdout, rows)
		fmt.Println()
	}
	if *figure8 || *table4 {
		fig8Rows, err = experiments.Figure(ctx, cache.DM8K, nil, cfg)
		if err != nil {
			fatal(err)
		}
		experiments.RenderFigure(os.Stdout, "Figure 8: replacement miss ratio before/after tiling (8KB)", fig8Rows)
		if *bars {
			fmt.Println()
			experiments.RenderFigureBars(os.Stdout, "Figure 8 (bars)", fig8Rows)
		}
		fmt.Println()
		writeCSV(*csvDir, "figure8.csv", fig8Rows)
	}
	if *figure9 || *table4 {
		fig9Rows, err = experiments.Figure(ctx, cache.DM32K, nil, cfg)
		if err != nil {
			fatal(err)
		}
		experiments.RenderFigure(os.Stdout, "Figure 9: replacement miss ratio before/after tiling (32KB)", fig9Rows)
		if *bars {
			fmt.Println()
			experiments.RenderFigureBars(os.Stdout, "Figure 9 (bars)", fig9Rows)
		}
		fmt.Println()
		writeCSV(*csvDir, "figure9.csv", fig9Rows)
	}
	if *table3 {
		for _, c := range []cache.Config{cache.DM8K, cache.DM32K} {
			rows, err := experiments.Table3(ctx, c, cfg)
			if err != nil {
				fatal(err)
			}
			experiments.RenderTable3(os.Stdout, rows)
			fmt.Println()
		}
	}
	if *table4 {
		rows := []experiments.Table4Row{
			experiments.Table4("8KB", fig8Rows),
			experiments.Table4("32KB", fig9Rows),
		}
		experiments.RenderTable4(os.Stdout, rows)
		fmt.Println()
	}
	if *assoc {
		rows, err := experiments.AssocSweep(ctx, "MM", 500, []int{1, 2, 4, 8}, cfg)
		if err != nil {
			fatal(err)
		}
		experiments.RenderAssoc(os.Stdout, rows)
		fmt.Println()
	}
	if *inter {
		var rows []experiments.InterchangeRow
		for _, e := range []struct {
			kernel string
			size   int64
		}{{"MM", 500}, {"T2D", 500}, {"T3DJIK", 100}, {"T3DIKJ", 100}} {
			row, err := experiments.InterchangeVsTiling(ctx, e.kernel, e.size, cfg)
			if err != nil {
				fatal(err)
			}
			rows = append(rows, row)
		}
		experiments.RenderInterchange(os.Stdout, rows)
		fmt.Println()
	}
	if *sampChk {
		fmt.Println("Sampling validation (§2.3): 164-point interval vs 8200-point reference")
		for _, e := range []struct {
			kernel string
			size   int64
		}{{"T2D", 500}, {"MM", 500}, {"JACOBI3D", 100}, {"DPSSB", 0}} {
			chk, err := experiments.CheckSampling(e.kernel, e.size, cfg)
			if err != nil {
				fatal(err)
			}
			status := "OK"
			if !chk.WithinInterval {
				status = "OUTSIDE"
			}
			fmt.Printf("  %-12s paper: %v  precise: %v  [%s]\n",
				fmt.Sprintf("%s_%d", chk.Kernel, chk.Size), chk.PaperEstimate, chk.PreciseEstimate, status)
		}
		fmt.Println()
	}
	if *conv {
		entries := []experiments.Entry{
			{Kernel: "MM", Size: 100}, {Kernel: "MM", Size: 500},
			{Kernel: "T2D", Size: 500}, {Kernel: "T3DJIK", Size: 100},
			{Kernel: "JACOBI3D", Size: 100}, {Kernel: "DPSSB"},
		}
		rows, err := experiments.Convergence(ctx, entries, cfg)
		if err != nil {
			fatal(err)
		}
		experiments.RenderConvergence(os.Stdout, rows)
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "experiments: interrupted; results above are best-so-far")
		cliutil.Exit(cliutil.ExitInterrupted)
	}
	if n := quarantined.count(); n > 0 {
		fmt.Fprintf(os.Stderr, "experiments: completed degraded: %d evaluation(s) quarantined\n", n)
		cliutil.Exit(cliutil.ExitDegraded)
	}
	cliutil.Exit(cliutil.ExitOK)
}

// quarantineTally counts EvaluationQuarantinedEvents across every search
// of the run, reporting each on stderr as it happens.
type quarantineTally struct {
	mu sync.Mutex
	n  int
}

func (t *quarantineTally) Event(e cmetiling.Event) {
	q, ok := e.(cmetiling.EvaluationQuarantinedEvent)
	if !ok {
		return
	}
	t.mu.Lock()
	t.n++
	t.mu.Unlock()
	fmt.Fprintf(os.Stderr, "experiments: quarantined [%s] %v: %s\n", q.Search, q.Values, q.Reason)
}

func (t *quarantineTally) Add(cmetiling.Counters) {}

func (t *quarantineTally) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

func writeCSV(dir, name string, rows []experiments.FigureRow) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := experiments.CSVFigure(f, rows); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	// An interrupt that surfaces as a context error is a controlled stop,
	// not a failure: the searches already returned best-so-far results.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "experiments: interrupted; results above are best-so-far")
		cliutil.Exit(130)
	}
	cliutil.Fatal("experiments", err)
}
