// Command cmereport prints the locality analysis of a kernel: its reuse
// vectors, the Cache Miss Equations generated for it (counts per family
// and, with -dump, the polyhedra themselves), and the sampled miss-ratio
// estimate of §2.3.
//
// Usage:
//
//	cmereport -kernel MM -size 100
//	cmereport -kernel T2D -size 100 -tile 8,8 -dump
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"repro/internal/cliutil"
	"repro/internal/cme"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/iterspace"
	"repro/internal/kernels"
	"repro/internal/parser"
	"repro/internal/reuse"
	"repro/internal/sampling"
	"repro/internal/tiling"
)

func main() {
	var (
		kernel  = flag.String("kernel", "MM", "kernel name")
		file    = flag.String("file", "", "path to a textual kernel description (overrides -kernel)")
		size    = flag.Int64("size", 0, "problem size (0 = default)")
		cacheF  = flag.String("cache", "8k", "cache: 8k, 32k, or size:line:assoc")
		tileF   = flag.String("tile", "", "tile sizes for a tiled-space report")
		points  = flag.Int("points", sampling.PaperSampleSize, "sample points for the estimate")
		dump    = flag.Bool("dump", false, "dump every equation polyhedron")
		seed    = flag.Uint64("seed", 1, "sampling seed")
		workers = flag.Int("workers", 0, "classification goroutines for the sampled estimate (0 = CMETILING_WORKERS or min(8, NumCPU)); never changes the output")
		version = cliutil.VersionFlag()
	)
	flag.Parse()
	cliutil.HandleVersion("cmereport", version)

	cfg, err := cliutil.ParseCache(*cacheF)
	if err != nil {
		fatal(err)
	}
	var nest *ir.Nest
	if *file != "" {
		prog, perr := loadKernel(*file)
		if perr != nil {
			fatal(perr)
		}
		nest = prog
	} else {
		k, ok := kernels.Get(*kernel)
		if !ok {
			fatal(fmt.Errorf("unknown kernel %q", *kernel))
		}
		var ierr error
		nest, ierr = k.Instance(*size)
		if ierr != nil {
			fatal(ierr)
		}
	}
	fmt.Printf("kernel %s  cache %v\n%s\n", nest.Name, cfg, nest.String())

	names := nest.VarNames()
	fmt.Println("reuse vectors:")
	for _, v := range reuse.Compute(nest, cfg) {
		fmt.Printf("  %-14s %s <- %s  r=%v\n", v.Kind,
			nest.Refs[v.Ref].StringVars(names), nest.Refs[v.Source].StringVars(names), v.R)
	}

	var set *cme.Set
	var tile []int64
	if *tileF != "" {
		tile, err = cliutil.ParseTile(*tileF, nest.Depth())
		if err != nil {
			fatal(err)
		}
		set, err = cme.GenerateTiled(nest, cfg, tile)
	} else {
		set, err = cme.Generate(nest, cfg)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\ncache miss equations: %d convex region(s), %d compulsory, %d replacement\n",
		set.NumRegions, len(set.Compulsory), len(set.Replacement))
	if *dump {
		for _, eq := range set.Compulsory {
			fmt.Println(" ", eq)
		}
		for _, eq := range set.Replacement {
			fmt.Println(" ", eq)
		}
	}

	box, err := tiling.Box(nest)
	if err != nil {
		fatal(err)
	}
	var space iterspace.Space = box
	if tile != nil {
		space = iterspace.NewTiled(box, tile)
	}
	an, err := cme.NewAnalyzer(nest, space, cfg)
	if err != nil {
		fatal(err)
	}
	if *workers == 0 {
		*workers = core.DefaultWorkers()
	}
	est := sampling.EstimateMissRatioWorkers(an, *points, 0.90, rand.New(rand.NewPCG(*seed, *seed^0xabcd)), *workers)
	fmt.Printf("\nsampled estimate (%d points, 90%% confidence): %v\n", *points, est)

	fmt.Println("per-reference estimates:")
	perRef := sampling.EstimatePerRef(an, *points, 0.90, rand.New(rand.NewPCG(*seed^0x77, *seed)))
	for i, e := range perRef {
		fmt.Printf("  %-14s %v\n", nest.Refs[i].StringVars(names), e)
	}
}

func fatal(err error) {
	cliutil.Fatal("cmereport", err)
}

func loadKernel(path string) (*ir.Nest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	prog, err := parser.Parse(f, path)
	if err != nil {
		return nil, err
	}
	return prog.Nest, nil
}
