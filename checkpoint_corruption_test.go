package cmetiling_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"

	cmetiling "repro"
)

// ckptFixture runs a short search through the facade and returns a real
// converged checkpoint plus the nest it belongs to.
func ckptFixture(t *testing.T) (*cmetiling.Checkpoint, *cmetiling.Nest) {
	t.Helper()
	k, ok := cmetiling.GetKernel("MM")
	if !ok {
		t.Fatal("MM missing from catalog")
	}
	nest, err := k.Instance(40)
	if err != nil {
		t.Fatal(err)
	}
	var ckpt *cmetiling.Checkpoint
	opt := cmetiling.Options{
		Cache: cmetiling.DM8K, Seed: 3, SamplePoints: 64,
		Checkpoint: func(c *cmetiling.Checkpoint) error { ckpt = c; return nil },
	}
	if _, err := cmetiling.OptimizeTiling(context.Background(), nest, opt); err != nil {
		t.Fatal(err)
	}
	if ckpt == nil {
		t.Fatal("search produced no checkpoint")
	}
	return ckpt, nest
}

func ckptBytes(t *testing.T, c *cmetiling.Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := cmetiling.WriteCheckpoint(&buf, c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// stripSum removes the integrity sum so deliberate field edits exercise
// the semantic resume checks instead of tripping the checksum first.
func stripSum(t *testing.T, b []byte, edit func(m map[string]any)) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "sum")
	if edit != nil {
		edit(m)
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCorruptionTruncatedRejected: a snapshot cut off mid-write does not
// parse, and the error is not silently swallowed into a fresh search.
func TestCorruptionTruncatedRejected(t *testing.T) {
	c, _ := ckptFixture(t)
	b := ckptBytes(t, c)
	if _, err := cmetiling.ReadCheckpoint(bytes.NewReader(b[:len(b)/2])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

// TestCorruptionBitFlipCaughtByChecksum: a single flipped digit leaves
// the JSON perfectly parseable — only the SHA-256 integrity sum catches
// it.
func TestCorruptionBitFlipCaughtByChecksum(t *testing.T) {
	c, _ := ckptFixture(t)
	b := ckptBytes(t, c)
	re := regexp.MustCompile(`"evals": (\d)`)
	m := re.FindSubmatch(b)
	if m == nil {
		t.Fatalf("no evals field in checkpoint:\n%s", b)
	}
	flipped := byte('2')
	if m[1][0] == '2' {
		flipped = '3'
	}
	mut := re.ReplaceAll(b, []byte(`"evals": `+string(flipped)))
	if bytes.Equal(mut, b) {
		t.Fatal("mutation was a no-op")
	}
	_, err := cmetiling.ReadCheckpoint(bytes.NewReader(mut))
	if err == nil || !strings.Contains(err.Error(), "integrity") {
		t.Fatalf("bit flip not caught by checksum: %v", err)
	}
}

// TestCorruptionVersionMismatchRejected: a snapshot from a future layout
// version fails resume with a version error, not garbage state.
func TestCorruptionVersionMismatchRejected(t *testing.T) {
	c, nest := ckptFixture(t)
	mut := stripSum(t, ckptBytes(t, c), func(m map[string]any) { m["version"] = 99 })
	got, err := cmetiling.ReadCheckpoint(bytes.NewReader(mut))
	if err != nil {
		t.Fatalf("read should defer version checks to resume: %v", err)
	}
	opt := cmetiling.Options{Cache: cmetiling.DM8K, Seed: 3, SamplePoints: 64, ResumeFrom: got}
	if _, err := cmetiling.OptimizeTiling(context.Background(), nest, opt); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch not rejected: %v", err)
	}
}

// TestCorruptionLabelMismatchRejected: a tiling search refuses to resume
// from another phase's snapshot.
func TestCorruptionLabelMismatchRejected(t *testing.T) {
	c, nest := ckptFixture(t)
	mut := stripSum(t, ckptBytes(t, c), func(m map[string]any) { m["label"] = "padding" })
	got, err := cmetiling.ReadCheckpoint(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	opt := cmetiling.Options{Cache: cmetiling.DM8K, Seed: 3, SamplePoints: 64, ResumeFrom: got}
	if _, err := cmetiling.OptimizeTiling(context.Background(), nest, opt); err == nil ||
		!strings.Contains(err.Error(), "label") {
		t.Fatalf("label mismatch not rejected: %v", err)
	}
}

// TestCorruptionSumlessLegacyAccepted: snapshots written before the
// integrity sum existed still load.
func TestCorruptionSumlessLegacyAccepted(t *testing.T) {
	c, _ := ckptFixture(t)
	mut := stripSum(t, ckptBytes(t, c), nil)
	got, err := cmetiling.ReadCheckpoint(bytes.NewReader(mut))
	if err != nil {
		t.Fatalf("legacy sum-less checkpoint rejected: %v", err)
	}
	if got.Gen != c.Gen {
		t.Fatalf("legacy read mangled state: gen %d vs %d", got.Gen, c.Gen)
	}
}

// islandCkptFixture runs a short 2-island search, capturing every barrier
// snapshot through its serialised round trip, and returns the snapshots,
// the uninterrupted result and the nest.
func islandCkptFixture(t *testing.T) ([]*cmetiling.Checkpoint, *cmetiling.TilingResult, *cmetiling.Nest) {
	t.Helper()
	k, ok := cmetiling.GetKernel("MM")
	if !ok {
		t.Fatal("MM missing from catalog")
	}
	nest, err := k.Instance(40)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []*cmetiling.Checkpoint
	opt := cmetiling.Options{
		Cache: cmetiling.DM8K, Seed: 3, SamplePoints: 64, Islands: 2,
		Checkpoint: func(c *cmetiling.Checkpoint) error {
			var buf bytes.Buffer
			if err := cmetiling.WriteCheckpoint(&buf, c); err != nil {
				return err
			}
			cp, err := cmetiling.ReadCheckpoint(&buf)
			if err != nil {
				return err
			}
			snaps = append(snaps, cp)
			return nil
		},
	}
	res, err := cmetiling.OptimizeTiling(context.Background(), nest, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("island search produced no checkpoints")
	}
	return snaps, res, nest
}

// TestIslandCheckpointResumeReplaysExactly: resuming a 2-island search
// from a mid-run barrier snapshot — including one taken between migration
// rounds — reproduces the uninterrupted search bit-for-bit.
func TestIslandCheckpointResumeReplaysExactly(t *testing.T) {
	snaps, want, nest := islandCkptFixture(t)
	for _, i := range []int{0, len(snaps) / 2, len(snaps) - 1} {
		opt := cmetiling.Options{
			Cache: cmetiling.DM8K, Seed: 3, SamplePoints: 64, Islands: 2,
			ResumeFrom: snaps[i],
		}
		got, err := cmetiling.OptimizeTiling(context.Background(), nest, opt)
		if err != nil {
			t.Fatalf("resume from snapshot %d: %v", i, err)
		}
		if !reflect.DeepEqual(got.Tile, want.Tile) || !reflect.DeepEqual(got.GA, want.GA) {
			t.Fatalf("resume from snapshot %d diverged:\ntile %v vs %v\nGA %+v vs %+v",
				i, got.Tile, want.Tile, got.GA, want.GA)
		}
	}
}

// TestCorruptionIslandCountMismatchRejected: a 2-island snapshot refuses
// to resume a search configured for a different island count, and refuses
// the single-population path entirely (version mismatch).
func TestCorruptionIslandCountMismatchRejected(t *testing.T) {
	snaps, _, nest := islandCkptFixture(t)
	snap := snaps[len(snaps)-1]
	opt := cmetiling.Options{
		Cache: cmetiling.DM8K, Seed: 3, SamplePoints: 64, Islands: 3,
		ResumeFrom: snap,
	}
	if _, err := cmetiling.OptimizeTiling(context.Background(), nest, opt); err == nil ||
		!strings.Contains(err.Error(), "islands") {
		t.Fatalf("island-count mismatch not rejected: %v", err)
	}
	opt.Islands = 0
	if _, err := cmetiling.OptimizeTiling(context.Background(), nest, opt); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("single-population resume of v2 snapshot not rejected: %v", err)
	}
}

// TestCorruptionIslandPayloadBitFlipCaught: the integrity sum covers the
// per-island payload of a version-2 snapshot too.
func TestCorruptionIslandPayloadBitFlipCaught(t *testing.T) {
	snaps, _, _ := islandCkptFixture(t)
	b := ckptBytes(t, snaps[len(snaps)-1])
	re := regexp.MustCompile(`"best_value": (\d)`)
	m := re.FindSubmatch(b)
	if m == nil {
		t.Fatalf("no best_value field in island checkpoint:\n%.200s", b)
	}
	flipped := byte('2')
	if m[1][0] == '2' {
		flipped = '3'
	}
	mut := re.ReplaceAll(b, []byte(`"best_value": `+string(flipped)))
	if bytes.Equal(mut, b) {
		t.Fatal("mutation was a no-op")
	}
	if _, err := cmetiling.ReadCheckpoint(bytes.NewReader(mut)); err == nil ||
		!strings.Contains(err.Error(), "integrity") {
		t.Fatalf("island payload bit flip not caught: %v", err)
	}
}

// TestCorruptionFallbackToRotatedAndResume: with a corrupted primary on
// disk, LoadCheckpointFile falls back to the rotated previous-good copy,
// reports the recovery, and the recovered snapshot resumes to
// convergence.
func TestCorruptionFallbackToRotatedAndResume(t *testing.T) {
	c, nest := ckptFixture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")

	older := *c
	older.Gen-- // pretend the rotated copy is one generation behind
	older.Sum = ""
	if err := cmetiling.SaveCheckpointFile(path, &older); err != nil {
		t.Fatal(err)
	}
	if err := cmetiling.SaveCheckpointFile(path, c); err != nil {
		t.Fatal(err)
	}
	// Corrupt the primary the way a torn write would: truncate it.
	if err := os.Truncate(path, 64); err != nil {
		t.Fatal(err)
	}

	var cap captureRec
	got, recovered, err := cmetiling.LoadCheckpointFile(path, &cap)
	if err != nil {
		t.Fatalf("fallback load failed: %v", err)
	}
	if !recovered || got.Gen != older.Gen {
		t.Fatalf("recovered=%v gen=%d, want fallback to gen %d", recovered, got.Gen, older.Gen)
	}
	found := false
	for _, e := range cap.all() {
		if rec, ok := e.(cmetiling.CheckpointRecoveredEvent); ok {
			found = true
			if rec.Path != path || rec.Cause == "" {
				t.Fatalf("recovery event = %+v", rec)
			}
		}
	}
	if !found {
		t.Fatal("fallback emitted no CheckpointRecoveredEvent")
	}

	opt := cmetiling.Options{Cache: cmetiling.DM8K, Seed: 3, SamplePoints: 64, ResumeFrom: got}
	res, err := cmetiling.OptimizeTiling(context.Background(), nest, opt)
	if err != nil {
		t.Fatalf("resume from recovered checkpoint failed: %v", err)
	}
	if res.Stopped != cmetiling.StopConverged {
		t.Fatalf("resumed search did not converge: %v", res.Stopped)
	}
}
