package cmetiling_test

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	cmetiling "repro"
)

// TestFacadeBoundedSearch: the re-exported Context variants enforce budget
// and deadline bounds and tag results with the re-exported stop reasons.
func TestFacadeBoundedSearch(t *testing.T) {
	k, ok := cmetiling.GetKernel("MM")
	if !ok {
		t.Fatal("MM missing from catalog")
	}
	nest, err := k.Instance(40)
	if err != nil {
		t.Fatal(err)
	}
	opt := cmetiling.Options{Cache: cmetiling.DM8K, Seed: 3, MaxEvaluations: 10}
	res, err := cmetiling.OptimizeTiling(context.Background(), nest, opt)
	if err != nil {
		t.Fatalf("budget surfaced as error: %v", err)
	}
	if res.Stopped != cmetiling.StopBudget {
		t.Fatalf("Stopped = %v, want %v", res.Stopped, cmetiling.StopBudget)
	}
	if len(res.Tile) != nest.Depth() {
		t.Fatalf("best-so-far tile %v has wrong rank", res.Tile)
	}

	opt = cmetiling.Options{Cache: cmetiling.DM8K, Seed: 3, Deadline: time.Nanosecond}
	res, err = cmetiling.OptimizeTiling(context.Background(), nest, opt)
	if err != nil {
		t.Fatalf("deadline surfaced as error: %v", err)
	}
	if res.Stopped != cmetiling.StopDeadline {
		t.Fatalf("Stopped = %v, want %v", res.Stopped, cmetiling.StopDeadline)
	}
}

// TestFacadeCheckpointRoundTrip: checkpoints written through the facade
// serialise, deserialise and resume to the converged result.
func TestFacadeCheckpointRoundTrip(t *testing.T) {
	k, _ := cmetiling.GetKernel("MM")
	nest, err := k.Instance(40)
	if err != nil {
		t.Fatal(err)
	}
	base := cmetiling.Options{Cache: cmetiling.DM8K, Seed: 3, SamplePoints: 64}

	full, err := cmetiling.OptimizeTiling(context.Background(), nest, base)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf bytes.Buffer
	opt := base
	opt.Checkpoint = func(c *cmetiling.Checkpoint) error {
		buf.Reset()
		if err := cmetiling.WriteCheckpoint(&buf, c); err != nil {
			return err
		}
		if c.Gen == 1 {
			cancel()
		}
		return nil
	}
	if _, err := cmetiling.OptimizeTiling(ctx, nest, opt); err != nil {
		t.Fatal(err)
	}

	ckpt, err := cmetiling.ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	opt = base
	opt.ResumeFrom = ckpt
	resumed, err := cmetiling.OptimizeTiling(context.Background(), nest, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resumed.Tile, full.Tile; len(got) != len(want) || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("resumed tile %v != uninterrupted %v", got, want)
	}
	if resumed.GA.Evaluations != full.GA.Evaluations {
		t.Fatalf("resumed evaluations %d != uninterrupted %d", resumed.GA.Evaluations, full.GA.Evaluations)
	}
}

// TestCLIBoundedSearches drives tilegen's -budget, -timeout, -checkpoint
// and -resume flags end to end.
func TestCLIBoundedSearches(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	tools := buildTools(t)
	ckpt := filepath.Join(t.TempDir(), "mm.ckpt")

	out := run(t, tools["tilegen"], "-kernel", "MM", "-size", "64", "-budget", "10")
	if !strings.Contains(out, "search stopped early (budget)") {
		t.Fatalf("budget run did not report its stop reason:\n%s", out)
	}
	if !strings.Contains(out, "best tile:") {
		t.Fatalf("budget run did not print a best-so-far tile:\n%s", out)
	}

	out = run(t, tools["tilegen"], "-kernel", "MM", "-size", "128", "-timeout", "1ms")
	if !strings.Contains(out, "search stopped early (deadline)") {
		t.Fatalf("timeout run did not report its stop reason:\n%s", out)
	}

	out = run(t, tools["tilegen"], "-kernel", "MM", "-size", "64",
		"-checkpoint", ckpt, "-budget", "40", "-progress")
	if !strings.Contains(out, "search stopped early (budget)") {
		t.Fatalf("checkpoint run did not stop on budget:\n%s", out)
	}
	out = run(t, tools["tilegen"], "-kernel", "MM", "-size", "64", "-resume", ckpt)
	if strings.Contains(out, "stopped early") {
		t.Fatalf("resumed run did not converge:\n%s", out)
	}
	if !strings.Contains(out, "best tile:") {
		t.Fatalf("resumed run printed no tile:\n%s", out)
	}
}
